#include "api/tcq.h"

#include <cctype>

#include "ra/parser.h"

namespace tcq {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Strips an optional COUNT( ... ) wrapper (case-insensitive) when the
/// opening parenthesis matches the text's final character; otherwise the
/// text is returned untouched and handed to the RA parser as-is.
std::string_view StripCountWrapper(std::string_view text) {
  std::string_view t = Trim(text);
  constexpr std::string_view kCount = "COUNT";
  if (t.size() <= kCount.size()) return t;
  for (size_t i = 0; i < kCount.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(t[i])) != kCount[i]) {
      return t;
    }
  }
  std::string_view rest = Trim(t.substr(kCount.size()));
  if (rest.size() < 2 || rest.front() != '(' || rest.back() != ')') return t;
  // The opening parenthesis must close at the very end, so e.g. a future
  // "COUNT(a) op COUNT(b)" form is not mangled.
  int depth = 0;
  for (size_t i = 0; i < rest.size(); ++i) {
    if (rest[i] == '(') ++depth;
    if (rest[i] == ')' && --depth == 0 && i + 1 != rest.size()) return t;
  }
  if (depth != 0) return t;
  return Trim(rest.substr(1, rest.size() - 2));
}

/// The standalone session's backend: privately owned catalog, lazily
/// created high-water thread pool, and warm-start cache. Serial by
/// contract — a standalone Session runs one query at a time, so nothing
/// here is synchronized (the concurrent backend lives in src/serve/).
class LocalQueryBackend final : public QueryBackend {
 public:
  LocalQueryBackend() = default;
  explicit LocalQueryBackend(Catalog catalog)
      : catalog_(std::move(catalog)) {}

  Catalog& catalog() override { return catalog_; }
  const Catalog& catalog() const override { return catalog_; }
  void ResetCatalog(Catalog catalog) override {
    catalog_ = std::move(catalog);
  }

  int pool_workers() const override {
    return pool_ == nullptr ? 0 : pool_->workers();
  }

  WarmStartCache* warm_cache_if_any() override { return warm_cache_.get(); }

  WarmStartStats CacheStats() const override {
    return warm_cache_ == nullptr ? WarmStartStats{} : warm_cache_->Stats();
  }
  void ClearCache() override {
    if (warm_cache_ != nullptr) warm_cache_->Clear();
  }

  Result<QueryResult> RunQuery(const ExprPtr& expr,
                               const AggregateSpec& aggregate,
                               ExecutorOptions options,
                               bool warm_start) override {
    options.pool = EnsurePool(options.threads);
    // Warm start is an engine-level concern: the backend only decides
    // whether to hand its cache to this run. A null cache takes exactly
    // the historical cold code paths.
    options.warm_cache = warm_start ? EnsureWarmCache() : nullptr;
    if (options.obs.metrics != nullptr) {
      options.obs.metrics->gauge("session.pool_workers")
          ->Set(pool_workers());
    }
    return RunTimeConstrainedAggregate(expr, aggregate, catalog_, options);
  }

 private:
  /// Returns the pool sized for at least `threads` execution width (null
  /// for serial). The pool is created lazily, grows when a query asks
  /// for more width, and never shrinks — narrower queries cap their
  /// batch participation instead (high-water reuse).
  ThreadPool* EnsurePool(int threads) {
    if (threads <= 1) return nullptr;
    const int workers = threads - 1;
    if (pool_ == nullptr || pool_->workers() < workers) {
      pool_ = std::make_unique<ThreadPool>(workers);
    }
    return pool_.get();
  }

  /// The warm-start cache, created empty on first use.
  WarmStartCache* EnsureWarmCache() {
    if (warm_cache_ == nullptr) {
      warm_cache_ = std::make_unique<WarmStartCache>();
    }
    return warm_cache_.get();
  }

  Catalog catalog_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<WarmStartCache> warm_cache_;
};

}  // namespace

Session::Session() : backend_(std::make_shared<LocalQueryBackend>()) {}

Session::Session(Options options)
    : backend_(std::make_shared<LocalQueryBackend>()),
      options_(std::move(options)) {}

Session::Session(Catalog catalog)
    : backend_(std::make_shared<LocalQueryBackend>(std::move(catalog))) {}

Session::Session(Catalog catalog, Options options)
    : backend_(std::make_shared<LocalQueryBackend>(std::move(catalog))),
      options_(std::move(options)) {}

QueryBuilder Session::Query(std::string_view text) {
  Result<ExprPtr> parsed = ParseQuery(StripCountWrapper(text));
  if (!parsed.ok()) {
    return QueryBuilder(this, nullptr, parsed.status(), options_.defaults,
                        options_.threads, options_.warm_start);
  }
  return QueryBuilder(this, std::move(*parsed), Status::OK(),
                      options_.defaults, options_.threads,
                      options_.warm_start);
}

QueryBuilder Session::Query(ExprPtr expr) {
  Status status = expr == nullptr
                      ? Status::InvalidArgument("null query expression")
                      : Status::OK();
  return QueryBuilder(this, std::move(expr), std::move(status),
                      options_.defaults, options_.threads,
                      options_.warm_start);
}

Result<ExplainResult> Session::Explain(std::string_view text) {
  return Query(text).Explain();
}

Result<QueryResult> QueryBuilder::Run() {
  TCQ_RETURN_NOT_OK(parse_status_);
  ExecutorOptions options = options_;
  options.threads = threads_;
  TCQ_RETURN_NOT_OK(options.Validate());
  Result<QueryResult> result = session_->backend_->RunQuery(
      expr_, aggregate_, std::move(options), warm_start_);
  if (result.ok() && owned_tracer_ != nullptr &&
      !owned_tracer_->options().export_path.empty()) {
    TCQ_RETURN_NOT_OK(
        owned_tracer_->ExportToFile(owned_tracer_->options().export_path));
  }
  return result;
}

Result<ExplainResult> QueryBuilder::Explain() {
  TCQ_RETURN_NOT_OK(parse_status_);
  ExecutorOptions options = options_;
  options.threads = threads_;
  TCQ_RETURN_NOT_OK(options.Validate());
  // Planning only: no pool, no samples, no side effects, no admission.
  options.pool = nullptr;
  // The predictor's EXPLAIN peek is read-only (PeekPrior / Peek move no
  // counters), so attaching the session cache keeps Explain side-effect
  // free; everything else still plans cold.
  options.warm_cache = (warm_start_ && options.sel_predictor.enabled)
                           ? session_->backend_->warm_cache_if_any()
                           : nullptr;
  return ExplainTimeConstrainedAggregate(expr_, aggregate_,
                                         session_->catalog(), options);
}

}  // namespace tcq
