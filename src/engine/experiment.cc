#include "engine/experiment.h"

#include <cmath>
#include <cstdio>

namespace tcq {

Result<ExperimentRow> RunExperiment(const ExperimentConfig& config) {
  if (config.catalog == nullptr || config.query == nullptr) {
    return Status::InvalidArgument("experiment needs a query and a catalog");
  }
  if (config.repetitions <= 0) {
    return Status::InvalidArgument("repetitions must be positive");
  }
  ExperimentRow row;
  row.d_beta = config.options.strategy.one_at_a_time.d_beta;
  double stages_sum = 0.0, util_sum = 0.0, blocks_sum = 0.0;
  double ovsp_sum = 0.0, estimate_sum = 0.0, rel_err_sum = 0.0;
  int overspent_runs = 0, counted_runs = 0;
  for (int rep = 0; rep < config.repetitions; ++rep) {
    ExecutorOptions options = config.options;
    options.seed = config.base_seed + static_cast<uint64_t>(rep) * 7919;
    options.quota_s = config.quota_s;
    TCQ_ASSIGN_OR_RETURN(
        QueryResult result,
        RunTimeConstrainedCount(config.query, *config.catalog, options));
    stages_sum += result.stages_run;
    util_sum += result.utilization;
    blocks_sum += static_cast<double>(result.blocks_sampled);
    if (result.overspent) {
      ++overspent_runs;
      ovsp_sum += result.overspend_seconds;
    }
    if (result.stages_counted > 0) {
      ++counted_runs;
      estimate_sum += result.estimate;
      if (config.exact_count > 0) {
        rel_err_sum +=
            std::abs(result.estimate -
                     static_cast<double>(config.exact_count)) /
            static_cast<double>(config.exact_count);
      }
    } else {
      ++row.zero_stage_runs;
    }
  }
  const double n = static_cast<double>(config.repetitions);
  row.runs = config.repetitions;
  row.mean_stages = stages_sum / n;
  row.risk_pct = 100.0 * static_cast<double>(overspent_runs) / n;
  row.mean_ovsp_s =
      overspent_runs > 0 ? ovsp_sum / static_cast<double>(overspent_runs)
                         : 0.0;
  row.utilization_pct = 100.0 * util_sum / n;
  row.mean_blocks = blocks_sum / n;
  if (counted_runs > 0) {
    row.mean_estimate = estimate_sum / counted_runs;
    row.mean_abs_rel_error_pct = 100.0 * rel_err_sum / counted_runs;
  }
  return row;
}

std::string FormatExperimentTable(const std::string& title,
                                  const std::vector<ExperimentRow>& rows) {
  std::string out = title + "\n";
  out +=
      "  d_beta  stages   risk%   ovsp(s)  utiliz%   blocks   est(mean)  "
      "|rel.err|%  runs\n";
  char line[160];
  for (const ExperimentRow& row : rows) {
    std::snprintf(line, sizeof(line),
                  "  %6.0f  %6.2f  %6.1f  %8.3f  %7.1f  %7.1f  %10.1f  "
                  "%9.1f  %4d\n",
                  row.d_beta, row.mean_stages, row.risk_pct, row.mean_ovsp_s,
                  row.utilization_pct, row.mean_blocks, row.mean_estimate,
                  row.mean_abs_rel_error_pct, row.runs);
    out += line;
  }
  return out;
}

}  // namespace tcq
