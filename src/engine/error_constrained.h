#ifndef TCQ_ENGINE_ERROR_CONSTRAINED_H_
#define TCQ_ENGINE_ERROR_CONSTRAINED_H_

#include "engine/executor.h"

namespace tcq {

/// Options for error-constrained COUNT(E) evaluation — the companion
/// problem the paper names in §3.2 ("error-constrained query evaluation")
/// but leaves to other work: instead of fitting the best estimate into a
/// time quota, spend as little time as possible to reach a target
/// precision.
struct ErrorConstrainedOptions {
  /// Stop when the CI half-width ≤ rel_halfwidth × estimate (0 disables).
  double rel_halfwidth = 0.10;
  /// Stop when the CI half-width ≤ this absolute count (0 disables).
  double abs_halfwidth = 0.0;
  double confidence = 0.95;

  Fulfillment fulfillment = Fulfillment::kFull;
  SelectivityOptions selectivity;
  CostModel physical = CostModel::Sun360();
  uint64_t seed = 1;
  int max_stages = 200;

  /// Blocks per relation at the first stage.
  int64_t initial_blocks = 20;
  /// Cap on the per-stage sample growth factor. The planner solves the
  /// variance formula for the sample size the target needs (variance
  /// shrinks ≈ 1/m) and grows toward it, but never faster than this.
  double max_growth = 4.0;
};

struct ErrorConstrainedResult {
  double estimate = 0.0;
  double variance = 0.0;
  ConfidenceInterval ci;
  bool met_target = false;  // false when the samples ran out first
  int stages = 0;
  int64_t blocks_sampled = 0;  // total over relations
  /// Simulated time the evaluation consumed (the quantity a
  /// time-constrained caller would have had to budget).
  double elapsed_seconds = 0.0;
};

/// Iteratively samples until the confidence interval of the COUNT(expr)
/// estimate meets the precision target:
///   repeat: draw the planned blocks → evaluate all inclusion–exclusion
///   terms → recompute estimate + CI → stop if the target is met,
///   otherwise size the next stage from the variance ratio
///   (m_needed ≈ m · Var_now / Var_target, growth-capped).
/// Deterministic in `options.seed`; spends simulated time through the
/// same cost-charged substrate as the time-constrained engine.
[[nodiscard]] Result<ErrorConstrainedResult> RunErrorConstrainedCount(
    const ExprPtr& expr, const Catalog& catalog,
    const ErrorConstrainedOptions& options);

}  // namespace tcq

#endif  // TCQ_ENGINE_ERROR_CONSTRAINED_H_
