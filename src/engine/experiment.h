#ifndef TCQ_ENGINE_EXPERIMENT_H_
#define TCQ_ENGINE_EXPERIMENT_H_

#include <string>
#include <vector>

#include "engine/executor.h"

namespace tcq {

/// One experiment: a query run `repetitions` times under the same options
/// with independent sampling seeds (the paper's "every entry obtained from
/// 200 independent experiments").
struct ExperimentConfig {
  ExprPtr query;
  const Catalog* catalog = nullptr;
  double quota_s = 10.0;
  ExecutorOptions options;
  int repetitions = 200;
  uint64_t base_seed = 1;
  /// Exact answer, for the relative-error column (0 = unknown).
  int64_t exact_count = 0;
};

/// Aggregates matching the columns of the paper's §5 tables, plus the
/// estimation-quality extras.
struct ExperimentRow {
  double d_beta = 0.0;           // the row's knob (echoed by the caller)
  double mean_stages = 0.0;      // "stages"
  double risk_pct = 0.0;         // "risk": % runs that overspent
  double mean_ovsp_s = 0.0;      // "ovsp": mean overshoot among them
  double utilization_pct = 0.0;  // "utilization"
  double mean_blocks = 0.0;      // "blocks" counted in the estimate
  // Extras (not in the paper's tables, recorded in EXPERIMENTS.md):
  double mean_estimate = 0.0;
  double mean_abs_rel_error_pct = 0.0;  // vs exact_count, counted runs only
  int runs = 0;
  int zero_stage_runs = 0;  // runs that could not afford any stage
};

/// Runs the experiment; deterministic in (config, base_seed).
[[nodiscard]] Result<ExperimentRow> RunExperiment(const ExperimentConfig& config);

/// Renders rows as the paper-style table (one line per d_beta).
std::string FormatExperimentTable(const std::string& title,
                                  const std::vector<ExperimentRow>& rows);

}  // namespace tcq

#endif  // TCQ_ENGINE_EXPERIMENT_H_
