#include "engine/error_constrained.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "estimator/combined.h"
#include "estimator/count_estimator.h"
#include "ra/inclusion_exclusion.h"
#include "sampling/block_sampler.h"
#include "sim/clock.h"
#include "sim/ledger.h"
#include "util/stats.h"

namespace tcq {

namespace {

double TargetHalfWidth(const ErrorConstrainedOptions& options,
                       double estimate) {
  double target = std::numeric_limits<double>::infinity();
  if (options.abs_halfwidth > 0.0) target = options.abs_halfwidth;
  if (options.rel_halfwidth > 0.0 && estimate > 0.0) {
    target = std::min(target, options.rel_halfwidth * estimate);
  }
  return target;
}

}  // namespace

Result<ErrorConstrainedResult> RunErrorConstrainedCount(
    const ExprPtr& expr, const Catalog& catalog,
    const ErrorConstrainedOptions& options) {
  if (options.rel_halfwidth <= 0.0 && options.abs_halfwidth <= 0.0) {
    return Status::InvalidArgument(
        "error-constrained evaluation needs a precision target");
  }
  TCQ_ASSIGN_OR_RETURN(Schema schema, InferSchema(expr, catalog));
  (void)schema;
  TCQ_ASSIGN_OR_RETURN(std::vector<SignedTerm> terms, ExpandCount(expr));

  VirtualClock clock;
  CostLedger ledger(&clock);
  Rng rng(options.seed);
  Rng noise_rng = rng.Fork();
  ledger.AttachNoise(&noise_rng, options.physical.stage_speed_cv,
                     options.physical.block_read_jitter);

  // Constant scan terms, sampled terms, shared samplers (mirrors the
  // time-constrained engine).
  std::vector<std::unique_ptr<StagedTermEvaluator>> evaluators;
  std::vector<int> signs;
  std::vector<CountEstimate> constants;
  std::vector<int> constant_signs;
  std::map<std::string, std::unique_ptr<BlockSampler>> samplers;
  for (const SignedTerm& term : terms) {
    if (term.expr->kind == ExprKind::kScan) {
      TCQ_ASSIGN_OR_RETURN(RelationPtr rel,
                           catalog.Find(term.expr->relation));
      CountEstimate constant;
      constant.value = static_cast<double>(rel->NumTuples());
      constant.hits = rel->NumTuples();
      constant.total_points = constant.value;
      constants.push_back(constant);
      constant_signs.push_back(term.sign);
      continue;
    }
    TCQ_ASSIGN_OR_RETURN(
        auto ev, StagedTermEvaluator::Create(term.expr, catalog,
                                             options.fulfillment, &ledger,
                                             options.physical));
    std::vector<std::string> scans;
    CollectScans(term.expr, &scans);
    for (const std::string& name : scans) {
      if (samplers.count(name) == 0) {
        TCQ_ASSIGN_OR_RETURN(RelationPtr rel, catalog.Find(name));
        samplers[name] = std::make_unique<BlockSampler>(std::move(rel));
      }
    }
    evaluators.push_back(std::move(ev));
    signs.push_back(term.sign);
  }

  ErrorConstrainedResult result;
  result.ci.level = options.confidence;
  if (evaluators.empty()) {
    CountEstimate combined =
        CombineSignedEstimates(constant_signs, constants);
    result.estimate = combined.value;
    result.met_target = true;
    result.ci = NormalConfidenceInterval(combined, options.confidence);
    return result;
  }

  const double z = NormalQuantile(0.5 + options.confidence / 2.0);
  int64_t next_blocks = std::max<int64_t>(1, options.initial_blocks);
  for (int stage = 0; stage < options.max_stages; ++stage) {
    // Draw and evaluate.
    ledger.BeginStage();
    ledger.Charge(CostCategory::kStageOverhead,
                  options.physical.stage_overhead_s);
    std::map<std::string, std::vector<const Block*>> stage_blocks;
    int64_t drawn = 0;
    for (auto& [name, sampler] : samplers) {
      auto blocks = sampler->Draw(next_blocks, &rng);
      drawn += static_cast<int64_t>(blocks.size());
      ledger.ChargeN(CostCategory::kBlockRead,
                     static_cast<int64_t>(blocks.size()),
                     options.physical.block_read_s);
      stage_blocks[name] = std::move(blocks);
    }
    if (drawn == 0) break;  // exhausted every relation
    for (auto& ev : evaluators) {
      TCQ_RETURN_NOT_OK(ev->ExecuteStage(stage_blocks));
    }
    result.blocks_sampled += drawn;
    ++result.stages;

    // Estimate.
    std::vector<CountEstimate> estimates;
    for (const auto& ev : evaluators) {
      estimates.push_back(ClusterCountEstimate(
          ev->total_space_blocks(), ev->cum_space_blocks(), ev->cum_hits(),
          ev->cum_points(), ev->total_points()));
    }
    std::vector<int> all_signs = signs;
    for (size_t c = 0; c < constants.size(); ++c) {
      estimates.push_back(constants[c]);
      all_signs.push_back(constant_signs[c]);
    }
    CountEstimate combined = CombineSignedEstimates(all_signs, estimates);
    result.estimate = combined.value;
    result.variance = combined.variance;
    result.ci = NormalConfidenceInterval(combined, options.confidence);

    double target = TargetHalfWidth(options, combined.value);
    double half_width = z * std::sqrt(combined.variance);
    if (std::isfinite(target) && half_width <= target) {
      result.met_target = true;
      break;
    }

    // Size the next stage: variance shrinks roughly like 1/m, so the
    // sample must grow by Var_now / Var_target; cap the growth.
    double ratio = std::isfinite(target) && target > 0.0
                       ? (half_width * half_width) / (target * target)
                       : options.max_growth;
    ratio = std::clamp(ratio, 1.2, options.max_growth);
    int64_t have = 0;
    for (const auto& [name, sampler] : samplers) {
      have = std::max(have, sampler->drawn_blocks());
    }
    next_blocks = std::max<int64_t>(
        1, static_cast<int64_t>(std::ceil(
               static_cast<double>(have) * (ratio - 1.0))));
  }
  result.elapsed_seconds = clock.Now();
  return result;
}

}  // namespace tcq
