#ifndef TCQ_ENGINE_EXECUTOR_H_
#define TCQ_ENGINE_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "cost/adaptive_model.h"
#include "cost/sel_predictor.h"
#include "estimator/count_estimator.h"
#include "exec/staged.h"
#include "fault/fault.h"
#include "obs/obs.h"
#include "parallel/thread_pool.h"
#include "ra/expr.h"
#include "sim/cost_model.h"
#include "storage/relation.h"
#include "timectrl/selectivity.h"
#include "timectrl/stopping.h"
#include "timectrl/strategy.h"
#include "util/random.h"
#include "util/result.h"

namespace tcq {

class WarmStartCache;

/// Which time-control strategy to run (§3.3).
struct StrategyConfig {
  enum class Kind { kOneAtATime, kSingleInterval, kHeuristic };
  Kind kind = Kind::kOneAtATime;
  OneAtATimeStrategy::Options one_at_a_time;
  SingleIntervalStrategy::Options single_interval;
  HeuristicStrategy::Options heuristic;
};

std::unique_ptr<TimeControlStrategy> MakeStrategy(
    const StrategyConfig& config);

/// Options of a time-constrained COUNT(E) run.
struct ExecutorOptions {
  /// The query's time quota T in seconds (simulated unless
  /// `use_wall_clock`): the hard constraint the paper's title promises.
  /// Lives here — not as a separate entry-point argument — so observers,
  /// EXPLAIN, and option edits all see one authoritative value.
  double quota_s = 5.0;
  StrategyConfig strategy;
  Fulfillment fulfillment = Fulfillment::kFull;
  /// §5.B's suggestion: when no further *full*-fulfillment stage fits in
  /// the residual time, switch to partial fulfillment (new×new only) for
  /// the remaining stages instead of stopping, using up time that would
  /// otherwise be wasted. Only meaningful with `fulfillment = kFull`.
  bool final_partial_stages = false;
  DeadlineMode deadline_mode = DeadlineMode::kHard;
  PrecisionStop precision;  // disabled by default
  SelectivityOptions selectivity;
  AdaptiveCostModel::Options cost;
  CostModel physical = CostModel::Sun360();
  /// Figure 3.4's ε: acceptable slack when targeting the remaining time.
  double epsilon_s = 0.05;
  /// Confidence level of the reported interval.
  double confidence = 0.95;
  /// Safety bound on the number of stages.
  int max_stages = 200;
  /// Seed of the block-sampling RNG (every run is reproducible).
  uint64_t seed = 1;
  /// Run against real elapsed time instead of the simulator: the
  /// deadline, stage planning, and cost-coefficient fitting all use the
  /// machine's monotonic clock, and the CostModel constants only seed the
  /// initial coefficients (re-fitted from real measurements after
  /// stage 1). Sampling stays reproducible; timing does not.
  bool use_wall_clock = false;
  /// Execution width of the stage loop, counting the calling thread: the
  /// per-relation block draws, the inclusion–exclusion term evaluators,
  /// and the merge-pair partitions inside each evaluator fan out across
  /// `threads - 1` pool workers plus the caller (see DESIGN.md "Threading
  /// model"). Estimates are bit-identical for any value at the same seed;
  /// in wall-clock mode the cost model additionally plans stage fractions
  /// sized for the parallel throughput.
  int threads = 1;
  /// Shared pool to run on instead of creating a per-run one (not owned;
  /// e.g. tcq::Session's). When set it defines the execution width cap
  /// min(threads, pool width) when threads > 1, or the pool's full width
  /// when threads is left at 1 — so a high-water pool can serve narrower
  /// queries.
  ThreadPool* pool = nullptr;
  /// Observability sinks (tracer, metrics, progress observer), all
  /// optional and non-owning. The default-empty handle costs one pointer
  /// check per instrumentation site; no virtual dispatch on hot paths.
  ObsHandle obs;
  /// Session-lifetime warm-start state (not owned; normally
  /// tcq::Session's): per-relation sample pools replayed as this run's
  /// first draws, selectivity priors seeding stage-0 planning, and the
  /// previous run's fitted cost coefficients. Null (the default) runs
  /// cold and is bit-identical to a build without the cache subsystem at
  /// any seed and thread count.
  WarmStartCache* warm_cache = nullptr;
  /// Combine inclusion–exclusion terms with the Cauchy–Schwarz variance
  /// bound (Σ|aᵢ|σᵢ)² instead of the independent sum Σaᵢ²σᵢ² — the
  /// historical behaviour, kept as an explicit opt-in for callers that
  /// want never-understated intervals whatever the term correlations.
  bool conservative_term_variance = false;
  /// Serving-layer completion deadline in real (serving-clock) seconds,
  /// measured from submission to a tcq::Server: the admission queue
  /// orders waiters by it (earliest first) and stops waiting for budget
  /// once it expires; finishing later counts as a deadline miss in the
  /// serve metrics. 0 (the default) means "use quota_s". The standalone
  /// engine ignores it — quota_s alone bounds execution time.
  double serve_deadline_s = 0.0;
  /// Physical evaluation path (DESIGN.md §11): Layout::kColumnar routes
  /// selections through the batch-vectorized bitmap kernel and the
  /// join/intersect sorts and merges through encoded-key columnar kernels.
  /// Estimates, variances, stage reports and every simulated-time charge
  /// are bit-identical to Layout::kRow at any seed and thread count —
  /// only real elapsed time (and, in wall-clock mode, the measured step
  /// times the cost model fits) changes.
  Layout layout = Layout::kRow;
  /// Hybrid stage-0 selectivity prediction (DESIGN.md §12): a tournament
  /// chooser over the within-query observation, the warm-start prior and
  /// a query-stream history table, whose confidence also scales the sel⁺
  /// inflation width per node. Default-off; with `enabled == false`
  /// every run is bit-identical to a build without the predictor at any
  /// seed and thread count. When enabled with a warm cache attached the
  /// predictor's history persists across runs; without a cache it is
  /// query-local (only the observed/default components ever win).
  SelPredictorOptions sel_predictor;
  /// Deterministic fault injection at the storage boundary (DESIGN.md
  /// §10): transient read errors retried with quota-charged exponential
  /// backoff, permanently unreadable blocks excluded from the sampling
  /// frame (degraded answers with widened variance), and straggler reads
  /// charged at inflated latency. Disabled by default; a disabled
  /// injector leaves every result bit-identical to a fault-free build at
  /// any seed and thread count.
  FaultOptions faults;

  /// Rejects nonsense configurations: non-finite or non-positive
  /// quota_s, epsilon_s or confidence outside (0, 1), threads < 1,
  /// max_stages < 1, serve_deadline_s negative or non-finite, NaN or
  /// negative precision-stop targets, and invalid fault or predictor
  /// options. The Run* entry points call this before touching any data.
  [[nodiscard]] Status Validate() const;
};

/// What happened during one stage (Figure 3.1's while-loop body).
/// `StageReport` (src/obs/report.h) is the record; the old `StageTrace`
/// name stays as an alias for existing call sites.
using StageTrace = StageReport;

/// How the serving layer admitted a query (filled in by tcq::Server;
/// every standalone engine run reports kStandalone with zeroed timings).
/// Rejected submissions never produce a QueryResult — they surface as a
/// typed non-OK Status (kResourceExhausted / kDeadlineExceeded) instead.
struct AdmissionReport {
  enum class Outcome {
    kStandalone,  // not served through an admission controller
    kAdmitted,    // full requested quota granted immediately
    kShrunk,      // admitted immediately at a reduced quota
    kQueued,      // waited in the EDF queue before being granted
  };
  Outcome outcome = Outcome::kStandalone;
  double requested_quota_s = 0.0;  // quota asked for at submission
  double granted_quota_s = 0.0;    // quota the ledger actually drew
  double queue_wait_s = 0.0;       // serving-clock seconds spent queued
  double serve_latency_s = 0.0;    // submission → completion, serving clock
  double deadline_s = 0.0;         // effective serving deadline applied
  bool deadline_missed = false;    // serve_latency_s exceeded deadline_s
};

/// Result of a time-constrained COUNT(E) evaluation.
struct QueryResult {
  /// The returned estimate: after the last within-quota stage under a
  /// hard deadline; after the final stage under a soft one.
  double estimate = 0.0;
  double variance = 0.0;
  ConfidenceInterval ci;

  int stages_run = 0;        // stages started (incl. an aborted one)
  int stages_counted = 0;    // stages contributing to `estimate`
  bool overspent = false;    // the quota expired mid-stage
  double overspend_seconds = 0.0;  // time past the quota spent finishing it
  /// Share of the quota spent in the counted stages ("successfully used").
  double utilization = 0.0;
  int64_t blocks_sampled = 0;  // blocks contributing to `estimate`
  /// Blocks drawn by a hard-deadline-aborted final stage: they cost time
  /// and I/O but contribute nothing to `estimate`. Always
  /// blocks_sampled + blocks_wasted == Σ stage_reports[i].blocks_drawn
  /// (== the `engine.blocks_drawn` metric when metering).
  int64_t blocks_wasted = 0;
  double elapsed_seconds = 0.0;  // total, incl. any aborted stage
  bool stopped_for_precision = false;
  /// Set when the run ended because no affordable stage remained.
  bool stopped_no_affordable_stage = false;
  /// Per-stage reports, aborted final stage included. In simulation the
  /// reports' `ledger_spend_s` values telescope: their sum equals
  /// `elapsed_seconds` (the virtual clock only advances inside stages).
  std::vector<StageReport> stage_reports;
  /// Serving-layer admission record (kStandalone outside a tcq::Server).
  AdmissionReport admission;
  /// True when at least one sampled block was permanently lost during
  /// execution: the estimate was computed over a reduced sampling frame
  /// and `variance`/`ci` carry the widening factor in `faults`.
  bool degraded = false;
  /// Fault tally of the whole run (zeroed unless faults were injected);
  /// per-stage counts live in the stage reports.
  FaultReport faults;

  const std::vector<StageReport>& stages() const { return stage_reports; }
};

/// Which aggregate of the expression's output to estimate. The paper
/// restricts itself to COUNT (§1); SUM and AVG are the natural extension
/// it alludes to — the same sampling, time-control and cost machinery
/// with the 0/1 point value replaced by an output column's value.
struct AggregateSpec {
  enum class Kind { kCount, kSum, kAvg };
  Kind kind = Kind::kCount;
  /// Numeric output column for kSum / kAvg (name in the expression's
  /// output schema).
  std::string column;

  static AggregateSpec Count() { return {}; }
  static AggregateSpec Sum(std::string column) {
    return {Kind::kSum, std::move(column)};
  }
  static AggregateSpec Avg(std::string column) {
    return {Kind::kAvg, std::move(column)};
  }
};

/// Evaluates the estimator of an aggregate of `expr` within
/// `options.quota_s` (simulated) seconds. AVG is estimated as the ratio
/// of the SUM and COUNT estimates, with a first-order (delta-method)
/// variance that neglects their covariance.
[[nodiscard]] Result<QueryResult> RunTimeConstrainedAggregate(
    const ExprPtr& expr, const AggregateSpec& aggregate,
    const Catalog& catalog, const ExecutorOptions& options);

/// Evaluates the estimator of COUNT(expr) within `options.quota_s`
/// simulated seconds (Figure 3.1):
///
///   expand COUNT(E) by inclusion–exclusion; then repeat
///     revise selectivities → plan the stage (strategy + Sample-Size-
///     Determine over the adaptive cost formulas) → draw cluster samples →
///     evaluate all terms (full/partial fulfillment) → re-fit cost
///     coefficients → recompute the combined estimate
///   until the quota, a precision target, or sample exhaustion stops it.
///
/// Deterministic: all timing flows through a fresh VirtualClock and all
/// randomness through Rng(options.seed).
[[nodiscard]] Result<QueryResult> RunTimeConstrainedCount(
    const ExprPtr& expr, const Catalog& catalog,
    const ExecutorOptions& options);

/// One predicted stage of an EXPLAIN plan.
struct StagePrediction {
  int index = 0;
  double time_left_before = 0.0;   // Ti the planner would see
  double planned_fraction = 0.0;   // fi
  double d_beta_used = 0.0;
  double predicted_seconds = 0.0;  // QCOST at the chosen fraction
  int64_t blocks_planned = 0;      // over all relations
};

/// One operator's stage-0 prediction in an EXPLAIN plan, as peeked from
/// the hybrid selectivity predictor (read-only; no counters move).
struct PredictorNodeView {
  int term = 0;
  int node = 0;            // pre-order id within the term
  std::string op;          // operator kind name
  std::string component;   // chooser pick: observed/prior/history/default
  double selectivity = 0.0;
  double confidence = 0.0;
  double width_scale = 1.0;
};

/// The planner's view of a query before any sample is drawn.
struct ExplainResult {
  std::string strategy;       // time-control strategy name
  double quota_s = 0.0;       // T
  Layout layout = Layout::kRow;  // chosen evaluation path
  int num_sampled_terms = 0;  // inclusion–exclusion terms to sample
  int num_constant_terms = 0;  // bare-scan terms answered from the catalog
  int64_t total_blocks = 0;   // across all scanned relations
  std::vector<StagePrediction> stages;
  /// True when the predicted stages exhaust every relation's blocks
  /// before the quota runs out.
  bool exhausts_samples = false;
  /// Hybrid-predictor view (DESIGN.md §12): set when
  /// `options.sel_predictor.enabled`, with one entry per sampled
  /// operator node showing the component the chooser would pick at
  /// stage 0, its confidence and the resulting inflation width.
  bool predictor_active = false;
  std::vector<PredictorNodeView> predictor_nodes;

  /// Multi-line human-readable plan (the `Session::Explain` output).
  std::string ToString() const;
};

/// Runs the planning loop — inclusion–exclusion expansion, stage-1
/// selectivity defaults, the time-control strategy and Sample-Size-
/// Determine over the initial cost coefficients — WITHOUT drawing a
/// single sample (EXPLAIN, not EXPLAIN ANALYZE). Predictions are the
/// stage-0 view: block exhaustion is simulated stage over stage, but the
/// selectivity revisions and cost-coefficient re-fits that a real run
/// learns from its samples are not, so later stages' costs reflect the
/// planner's priors. Deterministic and side-effect free.
[[nodiscard]] Result<ExplainResult> ExplainTimeConstrainedAggregate(
    const ExprPtr& expr, const AggregateSpec& aggregate,
    const Catalog& catalog, const ExecutorOptions& options);

}  // namespace tcq

#endif  // TCQ_ENGINE_EXECUTOR_H_
