#include "engine/executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <map>
#include <set>
#include <utility>

#include "cost/predictor.h"
#include "util/check.h"
#include "sampling/block_sampler.h"
#include "estimator/combined.h"
#include "estimator/sum_estimator.h"
#include "estimator/goodman.h"
#include "ra/inclusion_exclusion.h"
#include "sim/clock.h"
#include "sim/ledger.h"
#include "util/stats.h"

namespace tcq {

std::unique_ptr<TimeControlStrategy> MakeStrategy(
    const StrategyConfig& config) {
  switch (config.kind) {
    case StrategyConfig::Kind::kOneAtATime:
      return std::make_unique<OneAtATimeStrategy>(config.one_at_a_time);
    case StrategyConfig::Kind::kSingleInterval:
      return std::make_unique<SingleIntervalStrategy>(
          config.single_interval);
    case StrategyConfig::Kind::kHeuristic:
      return std::make_unique<HeuristicStrategy>(config.heuristic);
  }
  return std::make_unique<OneAtATimeStrategy>(config.one_at_a_time);
}

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The current estimate of one term (cluster estimator, or guarded
/// Goodman for projection roots).
CountEstimate EstimateTerm(const StagedTermEvaluator& ev) {
  if (!ev.root_is_project()) {
    return ClusterCountEstimate(ev.total_space_blocks(),
                                ev.cum_space_blocks(), ev.cum_hits(),
                                ev.cum_points(), ev.total_points());
  }
  // Projection: COUNT is the number of distinct groups among the
  // expression's output tuples. Estimate the qualifying population from
  // the child's selectivity, then apply Goodman's estimator to the sample
  // occupancies ([HoOT 88]'s revised-Goodman approach; see DESIGN.md).
  const StagedNode& root = ev.root();
  const StagedNode& child = *root.left;
  std::vector<int64_t> occupancies = ev.RootOccupancies();
  int64_t sample_n = 0;
  for (int64_t c : occupancies) sample_n += c;
  double sel_child =
      child.cum_points > 0.0
          ? static_cast<double>(child.cum_tuples) / child.cum_points
          : 0.0;
  double qualifying_pop = std::max(sel_child * ev.total_points(),
                                   static_cast<double>(sample_n));
  CountEstimate e;
  e.value = GoodmanEstimate(qualifying_pop, occupancies);
  e.hits = static_cast<int64_t>(occupancies.size());
  e.points = ev.cum_points();
  e.total_points = ev.total_points();
  if (sample_n > 0 && qualifying_pop > 0.0) {
    // Two uncertainty sources: the distinct share within the qualifying
    // population, and the size of that population itself (estimated from
    // the child's sample). With all-singleton samples the share variance
    // degenerates to 0, so the population term keeps the interval honest.
    double distinct_share = static_cast<double>(occupancies.size()) /
                            static_cast<double>(sample_n);
    double share_var = qualifying_pop * qualifying_pop *
                       SrsProportionVariance(distinct_share, qualifying_pop,
                                             static_cast<double>(sample_n));
    double pop_var = ev.total_points() * ev.total_points() *
                     SrsProportionVariance(sel_child, ev.total_points(),
                                           child.cum_points);
    e.variance = share_var + distinct_share * distinct_share * pop_var;
  }
  TCQ_CHECK_INVARIANT(e.variance >= 0.0,
                      "projection term variance went negative");
  return e;
}

}  // namespace

Status ExecutorOptions::Validate() const {
  if (!(epsilon_s > 0.0 && epsilon_s < 1.0)) {
    return Status::InvalidArgument(
        "epsilon_s must lie in (0, 1); got " + std::to_string(epsilon_s));
  }
  if (!(confidence > 0.0 && confidence < 1.0)) {
    return Status::InvalidArgument(
        "confidence must lie in (0, 1); got " + std::to_string(confidence));
  }
  if (threads < 1) {
    return Status::InvalidArgument(
        "threads must be >= 1 (it counts the calling thread); got " +
        std::to_string(threads));
  }
  if (max_stages < 1) {
    return Status::InvalidArgument("max_stages must be >= 1; got " +
                                   std::to_string(max_stages));
  }
  return Status::OK();
}

Result<QueryResult> RunTimeConstrainedCount(const ExprPtr& expr,
                                            double quota_s,
                                            const Catalog& catalog,
                                            const ExecutorOptions& options) {
  return RunTimeConstrainedAggregate(expr, AggregateSpec::Count(), quota_s,
                                     catalog, options);
}

Result<QueryResult> RunTimeConstrainedAggregate(
    const ExprPtr& expr, const AggregateSpec& aggregate, double quota_s,
    const Catalog& catalog, const ExecutorOptions& options) {
  TCQ_RETURN_NOT_OK(options.Validate());
  if (quota_s <= 0.0) {
    return Status::InvalidArgument("time quota must be positive");
  }
  // Validate the expression and expand it into intersect-only terms.
  TCQ_ASSIGN_OR_RETURN(Schema schema, InferSchema(expr, catalog));
  int value_col = -1;
  if (aggregate.kind != AggregateSpec::Kind::kCount) {
    TCQ_ASSIGN_OR_RETURN(value_col, schema.IndexOf(aggregate.column));
  }
  TCQ_ASSIGN_OR_RETURN(std::vector<SignedTerm> terms, ExpandCount(expr));
  if (terms.empty()) {
    QueryResult r;
    r.ci.level = options.confidence;
    return r;
  }

  const bool wall = options.use_wall_clock;
  VirtualClock virtual_clock;
  WallClock wall_clock;
  const Clock& clock =
      wall ? static_cast<const Clock&>(wall_clock) : virtual_clock;
  CostLedger ledger(wall ? nullptr : &virtual_clock);
  Rng rng(options.seed);
  Rng noise_rng = rng.Fork();
  if (!wall) {
    ledger.AttachNoise(&noise_rng, options.physical.stage_speed_cv,
                       options.physical.block_read_jitter);
  }

  // Execution pool: `threads` counts the calling thread, so threads = N
  // creates N - 1 workers; an external pool (tcq::Session) overrides it.
  ThreadPool* pool = options.pool;
  std::unique_ptr<ThreadPool> owned_pool;
  if (pool == nullptr && options.threads > 1) {
    owned_pool = std::make_unique<ThreadPool>(options.threads - 1);
    pool = owned_pool.get();
  }
  const int width = pool != nullptr ? pool->width() : 1;

  // The cost model's worker count: virtual time always charges the serial
  // machine's work (keeping simulated runs bit-identical at any thread
  // count), so only wall-clock planning sees the real width.
  CostModel physical = options.physical;
  physical.workers = wall ? width : 1;
  AdaptiveCostModel coefs(physical, options.cost);
  std::unique_ptr<TimeControlStrategy> strategy =
      MakeStrategy(options.strategy);

  // Terms that are bare scans have exactly known aggregates (the catalog
  // knows |r|); they are priced at zero and never sampled. COUNT(r1 ∪ r2)
  // thus spends its whole quota on the r1 ∩ r2 term.
  std::vector<SignedTerm> sampled_terms;
  std::vector<CountEstimate> constant_estimates;
  std::vector<int> constant_signs;
  for (const SignedTerm& term : terms) {
    if (term.expr->kind != ExprKind::kScan) {
      sampled_terms.push_back(term);
      continue;
    }
    TCQ_ASSIGN_OR_RETURN(RelationPtr rel, catalog.Find(term.expr->relation));
    CountEstimate constant;
    constant.total_points = static_cast<double>(rel->NumTuples());
    if (aggregate.kind == AggregateSpec::Kind::kCount) {
      constant.value = static_cast<double>(rel->NumTuples());
      constant.hits = rel->NumTuples();
    }
    constant_estimates.push_back(constant);
    constant_signs.push_back(term.sign);
  }
  // For SUM/AVG the scan term's exact value needs one pass over the
  // relation; keep those sampled for simplicity (rare in practice).
  if (aggregate.kind != AggregateSpec::Kind::kCount) {
    sampled_terms = terms;
    constant_estimates.clear();
    constant_signs.clear();
  }
  terms = std::move(sampled_terms);
  if (terms.empty()) {
    // Fully constant query (e.g. COUNT(r1)).
    CountEstimate combined =
        CombineSignedEstimates(constant_signs, constant_estimates);
    QueryResult r;
    r.estimate = combined.value;
    r.variance = combined.variance;
    r.ci = NormalConfidenceInterval(combined, options.confidence);
    r.stages_counted = 0;
    r.utilization = 0.0;
    return r;
  }

  // Build one staged evaluator per term; collect the relations involved.
  // Each term charges a private clockless ledger so the evaluators can run
  // on separate workers without racing on the shared clock or noise
  // stream; the engine folds every term's charges into the virtual clock
  // in term order after each stage's barrier.
  std::vector<std::unique_ptr<StagedTermEvaluator>> evaluators;
  std::vector<std::unique_ptr<CostLedger>> term_ledgers;
  std::vector<int> signs;
  std::map<std::string, std::unique_ptr<BlockSampler>> samplers;
  for (const SignedTerm& term : terms) {
    term_ledgers.push_back(std::make_unique<CostLedger>());
    TCQ_ASSIGN_OR_RETURN(
        auto ev, StagedTermEvaluator::Create(term.expr, catalog,
                                             options.fulfillment,
                                             term_ledgers.back().get(),
                                             physical));
    if (value_col >= 0) {
      TCQ_RETURN_NOT_OK(ev->TrackValueColumn(value_col));
    }
    if (wall) ev->MeasureStepsWith(&clock);
    ev->UseThreadPool(pool);
    std::vector<std::string> scans;
    CollectScans(term.expr, &scans);
    for (const std::string& name : scans) {
      if (samplers.count(name) == 0) {
        TCQ_ASSIGN_OR_RETURN(RelationPtr rel, catalog.Find(name));
        samplers[name] = std::make_unique<BlockSampler>(std::move(rel));
      }
    }
    evaluators.push_back(std::move(ev));
    signs.push_back(term.sign);
  }

  const Deadline deadline = Deadline::StartingNow(clock, quota_s);

  QueryResult result;
  result.ci.level = options.confidence;
  double counted_elapsed = 0.0;
  double previous_estimate = std::nan("");
  // Current fulfillment mode; may downgrade to partial once (§5.B hybrid).
  Fulfillment current_mode = options.fulfillment;

  for (int stage = 0; stage < options.max_stages; ++stage) {
    double time_left = deadline.Remaining(clock);
    if (time_left <= 0.0) break;

    // Largest drawable fraction and the one-block fraction step.
    double f_max = 0.0;
    double min_step = 1.0;
    for (const auto& [name, sampler] : samplers) {
      double total = static_cast<double>(sampler->total_blocks());
      if (total <= 0.0) continue;
      f_max = std::max(
          f_max, static_cast<double>(sampler->remaining_blocks()) / total);
      min_step = std::min(min_step, 1.0 / total);
    }
    if (f_max <= 0.0) break;  // every relation fully sampled

    // Figure 3.3: revise per-operator selectivities from all samples.
    std::vector<std::map<int, double>> sel_prev;
    sel_prev.reserve(evaluators.size());
    for (const auto& ev : evaluators) {
      sel_prev.push_back(ReviseSelectivities(*ev, options.selectivity));
    }

    // Full-query cost formula: per-stage overhead + block fetches (priced
    // once per relation) + every term's operator costs.
    auto fetch_cost = [&](double f) {
      double seconds = 0.0;
      for (const auto& [name, sampler] : samplers) {
        int64_t d_new = std::min<int64_t>(
            BlocksForFraction(f, sampler->total_blocks()),
            sampler->remaining_blocks());
        seconds += static_cast<double>(d_new) *
                   coefs.Coef(kGlobalCostNode, CostStep::kFetch);
      }
      return seconds;
    };
    auto qcost = [&](double f, double d_beta) -> Result<double> {
      double seconds = coefs.Coef(kGlobalCostNode, CostStep::kSetup) +
                       fetch_cost(f);
      for (size_t t = 0; t < evaluators.size(); ++t) {
        std::map<int, double> sel_plus = ComputeSelPlus(
            *evaluators[t], sel_prev[t], f, d_beta, current_mode);
        TCQ_ASSIGN_OR_RETURN(
            TermStagePrediction p,
            PredictTermStageCost(*evaluators[t], f, sel_plus, coefs,
                                 current_mode));
        seconds += p.seconds;
      }
      return seconds;
    };
    // First-order std-dev of the stage cost: per-operator selectivity
    // sigmas propagated through the cost formula, combined with the
    // conservative perfect-correlation bound (§3.3.1's covariances are
    // upper-bounded rather than estimated).
    auto qcost_sigma = [&](double f) -> Result<double> {
      double sigma = 0.0;
      for (size_t t = 0; t < evaluators.size(); ++t) {
        std::map<int, NodePoints> points =
            PredictNodePoints(*evaluators[t], f, current_mode);
        TCQ_ASSIGN_OR_RETURN(
            TermStagePrediction base,
            PredictTermStageCost(*evaluators[t], f, sel_prev[t], coefs,
                                 current_mode));
        for (const auto& [id, sel] : sel_prev[t]) {
          auto it = points.find(id);
          if (it == points.end()) continue;
          double sd = std::sqrt(SrsProportionVariance(
              sel, it->second.remaining_points, it->second.new_points));
          if (sd <= 0.0) continue;
          std::map<int, double> bumped = sel_prev[t];
          bumped[id] = std::min(1.0, sel + sd);
          TCQ_ASSIGN_OR_RETURN(
              TermStagePrediction hi,
              PredictTermStageCost(*evaluators[t], f, bumped, coefs,
                                   current_mode));
          sigma += std::max(0.0, hi.seconds - base.seconds);
        }
      }
      return sigma;
    };

    StagePlanContext context;
    context.next_stage = stage;
    context.time_left = time_left;
    context.quota = quota_s;
    context.f_max = f_max;
    context.f_min_step = min_step;
    context.epsilon = options.epsilon_s;
    context.qcost = qcost;
    context.qcost_sigma = qcost_sigma;

    TCQ_ASSIGN_OR_RETURN(StagePlan plan, strategy->PlanStage(context));
    if (plan.fraction <= 0.0) {
      if (options.final_partial_stages &&
          current_mode == Fulfillment::kFull) {
        // §5.B hybrid: a full stage no longer fits, but a cheap partial
        // (new×new only) stage might still use the residual time.
        current_mode = Fulfillment::kPartial;
        --stage;  // re-plan this stage under the partial cost formula
        continue;
      }
      result.stopped_no_affordable_stage = true;
      break;
    }
    // Strategies must hand back a usable sampling fraction: (0, 1] and
    // no larger than what is left to draw (paper §3.1 selectivity
    // revision assumes stages sample fresh blocks).
    TCQ_CHECK_INVARIANT(plan.fraction > 0.0 && plan.fraction <= 1.0,
                        "stage plan fraction outside (0, 1]");

    // ---- Execute the stage. ----
    double stage_start = clock.Now();
    ledger.BeginStage();
    if (!wall) {
      // Simulated per-stage bookkeeping overhead; under a wall clock the
      // planning work above took real time already.
      ledger.Charge(CostCategory::kStageOverhead,
                    options.physical.stage_overhead_s);
      coefs.Observe(kGlobalCostNode, CostStep::kSetup, 1.0,
                    options.physical.stage_overhead_s);
    } else {
      coefs.Observe(kGlobalCostNode, CostStep::kSetup, 1.0,
                    clock.Now() - stage_start);
    }

    // Realized work/span of this stage's fan-out sections (η re-fit).
    ParallelStats stage_parallel;

    // Parallel block draws: one task per relation, each drawing from its
    // own deterministic substream derived from (seed, relation, stage).
    // Ledger charges — which consume the per-block jitter noise — and
    // coefficient observations happen post-barrier in relation-name
    // order, so neither depends on the worker count.
    std::map<std::string, std::vector<const Block*>> stage_blocks;
    int64_t blocks_drawn = 0;
    {
      struct DrawSlot {
        std::string name;
        BlockSampler* sampler = nullptr;
        int64_t count = 0;
        std::vector<const Block*> blocks;
        double seconds = 0.0;
      };
      std::vector<DrawSlot> draws;
      draws.reserve(samplers.size());
      for (auto& [name, sampler] : samplers) {
        DrawSlot slot;
        slot.name = name;
        slot.sampler = sampler.get();
        slot.count = std::min<int64_t>(
            BlocksForFraction(plan.fraction, sampler->total_blocks()),
            sampler->remaining_blocks());
        draws.push_back(std::move(slot));
      }
      const uint64_t seed = options.seed;
      const uint64_t stage_idx = static_cast<uint64_t>(stage);
      std::vector<std::function<void()>> tasks;
      tasks.reserve(draws.size());
      for (DrawSlot& slot : draws) {
        DrawSlot* sp = &slot;
        tasks.push_back([sp, seed, stage_idx] {
          auto start = std::chrono::steady_clock::now();
          sp->blocks = sp->sampler->DrawSubstream(sp->count, seed, stage_idx);
          sp->seconds = SecondsSince(start);
        });
      }
      auto section_start = std::chrono::steady_clock::now();
      RunTasks(pool, &tasks);
      stage_parallel.span_seconds += SecondsSince(section_start);
      stage_parallel.tasks += static_cast<int>(tasks.size());
      for (DrawSlot& slot : draws) {
        stage_parallel.work_seconds += slot.seconds;
        blocks_drawn += static_cast<int64_t>(slot.blocks.size());
        if (!wall) {
          ledger.ChargeN(CostCategory::kBlockRead,
                         static_cast<int64_t>(slot.blocks.size()),
                         options.physical.block_read_s);
        }
        coefs.Observe(kGlobalCostNode, CostStep::kFetch,
                      static_cast<double>(slot.blocks.size()),
                      wall ? slot.seconds
                           : static_cast<double>(slot.blocks.size()) *
                                 options.physical.block_read_s);
        stage_blocks[slot.name] = std::move(slot.blocks);
      }
    }

    // Parallel term evaluation: every inclusion–exclusion term runs as
    // its own task (each term's merge pairs fan out further inside the
    // evaluator). Term ledgers are synced to this stage's machine-speed
    // factor up front; statuses, clock advancement, and coefficient
    // re-fits reduce in term order after the barrier.
    std::vector<double> term_prev_totals(evaluators.size(), 0.0);
    for (size_t t = 0; t < evaluators.size(); ++t) {
      term_ledgers[t]->SetStageFactor(ledger.current_stage_factor());
      term_prev_totals[t] = term_ledgers[t]->GrandTotal();
    }
    {
      std::vector<Status> statuses(evaluators.size());
      std::vector<double> durs(evaluators.size(), 0.0);
      std::vector<std::function<void()>> tasks;
      tasks.reserve(evaluators.size());
      for (size_t t = 0; t < evaluators.size(); ++t) {
        StagedTermEvaluator* ev = evaluators[t].get();
        Status* status = &statuses[t];
        double* dur = &durs[t];
        const auto* blocks = &stage_blocks;
        const Fulfillment mode = current_mode;
        tasks.push_back([ev, status, dur, blocks, mode] {
          auto start = std::chrono::steady_clock::now();
          *status = ev->ExecuteStageWithMode(*blocks, mode);
          *dur = SecondsSince(start);
        });
      }
      auto section_start = std::chrono::steady_clock::now();
      RunTasks(pool, &tasks);
      stage_parallel.span_seconds += SecondsSince(section_start);
      stage_parallel.tasks += static_cast<int>(tasks.size());
      for (size_t t = 0; t < evaluators.size(); ++t) {
        TCQ_RETURN_NOT_OK(statuses[t]);
        stage_parallel.work_seconds += durs[t];
      }
    }
    for (size_t t = 0; t < evaluators.size(); ++t) {
      double delta = term_ledgers[t]->GrandTotal() - term_prev_totals[t];
      if (!wall && delta > 0.0) virtual_clock.Advance(delta);
      ObserveTermStage(*evaluators[t], &coefs);
    }
    if (wall) {
      // Re-fit the parallel-efficiency coefficient η from the realized
      // speedup of this stage's fan-out sections.
      coefs.ObserveParallelism(stage_parallel.work_seconds,
                               stage_parallel.span_seconds);
    }
    double stage_end = clock.Now();
    double actual = stage_end - stage_start;
    bool within = deadline.Remaining(clock) >= 0.0;
    strategy->OnStageOutcome(plan.predicted_seconds, actual, !within);

    // ---- Recompute the combined estimate. ----
    std::vector<CountEstimate> term_estimates;
    term_estimates.reserve(evaluators.size());
    for (const auto& ev : evaluators) {
      term_estimates.push_back(EstimateTerm(*ev));
    }
    for (size_t c = 0; c < constant_estimates.size(); ++c) {
      term_estimates.push_back(constant_estimates[c]);
    }
    std::vector<int> all_signs = signs;
    all_signs.insert(all_signs.end(), constant_signs.begin(),
                     constant_signs.end());
    CountEstimate combined = CombineSignedEstimates(all_signs, term_estimates);
    if (aggregate.kind != AggregateSpec::Kind::kCount) {
      std::vector<CountEstimate> sum_estimates;
      sum_estimates.reserve(evaluators.size());
      for (const auto& ev : evaluators) {
        sum_estimates.push_back(ClusterSumEstimate(
            ev->total_space_blocks(), ev->cum_space_blocks(),
            ev->cum_value_sum(), ev->cum_value_sq_sum(), ev->cum_points(),
            ev->total_points()));
      }
      CountEstimate sum_combined =
          CombineSignedEstimates(signs, sum_estimates);
      if (aggregate.kind == AggregateSpec::Kind::kSum) {
        combined = sum_combined;
      } else {
        // AVG = SUM / COUNT, delta-method variance (covariance ignored).
        CountEstimate avg;
        avg.points = combined.points;
        avg.total_points = combined.total_points;
        if (combined.value != 0.0) {
          double ratio = sum_combined.value / combined.value;
          avg.value = ratio;
          avg.variance = (sum_combined.variance +
                          ratio * ratio * combined.variance) /
                         (combined.value * combined.value);
        }
        combined = avg;
      }
    }

    StageTrace trace;
    trace.index = stage;
    trace.time_left_before = time_left;
    trace.planned_fraction = plan.fraction;
    trace.d_beta_used = plan.d_beta_used;
    trace.predicted_seconds = plan.predicted_seconds;
    trace.actual_seconds = actual;
    trace.blocks_drawn = blocks_drawn;
    trace.within_quota = within;
    trace.estimate_after = combined.value;
    trace.variance_after = combined.variance;
    result.stages.push_back(trace);
    ++result.stages_run;

    if (!within) {
      result.overspent = true;
      result.overspend_seconds = deadline.Elapsed(clock) - quota_s;
      if (options.deadline_mode == DeadlineMode::kHard) {
        // The interrupted stage is aborted: its samples are wasted and the
        // previous stage's estimate stands.
        break;
      }
      // Soft deadline: the finished stage counts, then we stop.
      result.estimate = combined.value;
      result.variance = combined.variance;
      ++result.stages_counted;
      result.blocks_sampled += blocks_drawn;
      counted_elapsed = deadline.Elapsed(clock);
      break;
    }

    result.estimate = combined.value;
    result.variance = combined.variance;
    ++result.stages_counted;
    result.blocks_sampled += blocks_drawn;
    counted_elapsed = deadline.Elapsed(clock);
    // In simulation the clock advances only by ledger charges, so a
    // stage that passed the within-quota check cannot have pushed the
    // ledger past the quota (the paper's hard-constraint promise).
    TCQ_CHECK_INVARIANT(wall || counted_elapsed <= quota_s,
                        "ledger exceeded the time quota in a counted stage");

    if (ShouldStopForPrecision(options.precision, combined,
                               previous_estimate)) {
      result.stopped_for_precision = true;
      break;
    }
    previous_estimate = combined.value;
  }

  CountEstimate final_estimate;
  final_estimate.value = result.estimate;
  final_estimate.variance = result.variance;
  result.ci = NormalConfidenceInterval(final_estimate, options.confidence);
  result.elapsed_seconds = deadline.Elapsed(clock);
  result.utilization =
      quota_s > 0.0 ? std::min(1.0, counted_elapsed / quota_s) : 0.0;
  return result;
}

}  // namespace tcq
