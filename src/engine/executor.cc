#include "engine/executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <thread>
#include <utility>

#include "cache/warm_start.h"
#include "obs/metric_names.h"
#include "cost/predictor.h"
#include "fault/fault.h"
#include "util/check.h"
#include "sampling/block_sampler.h"
#include "estimator/combined.h"
#include "estimator/sum_estimator.h"
#include "estimator/goodman.h"
#include "ra/inclusion_exclusion.h"
#include "sim/clock.h"
#include "sim/ledger.h"
#include "util/stats.h"

namespace tcq {

std::unique_ptr<TimeControlStrategy> MakeStrategy(
    const StrategyConfig& config) {
  switch (config.kind) {
    case StrategyConfig::Kind::kOneAtATime:
      return std::make_unique<OneAtATimeStrategy>(config.one_at_a_time);
    case StrategyConfig::Kind::kSingleInterval:
      return std::make_unique<SingleIntervalStrategy>(
          config.single_interval);
    case StrategyConfig::Kind::kHeuristic:
      return std::make_unique<HeuristicStrategy>(config.heuristic);
  }
  return std::make_unique<OneAtATimeStrategy>(config.one_at_a_time);
}

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The current estimate of one term (cluster estimator, or guarded
/// Goodman for projection roots).
CountEstimate EstimateTerm(const StagedTermEvaluator& ev) {
  if (!ev.root_is_project()) {
    return ClusterCountEstimate(ev.total_space_blocks(),
                                ev.cum_space_blocks(), ev.cum_hits(),
                                ev.cum_points(), ev.total_points());
  }
  // Projection: COUNT is the number of distinct groups among the
  // expression's output tuples. Estimate the qualifying population from
  // the child's selectivity, then apply Goodman's estimator to the sample
  // occupancies ([HoOT 88]'s revised-Goodman approach; see DESIGN.md).
  const StagedNode& root = ev.root();
  const StagedNode& child = *root.left;
  std::vector<int64_t> occupancies = ev.RootOccupancies();
  int64_t sample_n = 0;
  for (int64_t c : occupancies) sample_n += c;
  double sel_child =
      child.cum_points > 0.0
          ? static_cast<double>(child.cum_tuples) / child.cum_points
          : 0.0;
  double qualifying_pop = std::max(sel_child * ev.total_points(),
                                   static_cast<double>(sample_n));
  CountEstimate e;
  e.value = GoodmanEstimate(qualifying_pop, occupancies);
  e.hits = static_cast<int64_t>(occupancies.size());
  e.points = ev.cum_points();
  e.total_points = ev.total_points();
  if (sample_n > 0 && qualifying_pop > 0.0) {
    // Two uncertainty sources: the distinct share within the qualifying
    // population, and the size of that population itself (estimated from
    // the child's sample). With all-singleton samples the share variance
    // degenerates to 0, so the population term keeps the interval honest.
    double distinct_share = static_cast<double>(occupancies.size()) /
                            static_cast<double>(sample_n);
    double share_var = qualifying_pop * qualifying_pop *
                       SrsProportionVariance(distinct_share, qualifying_pop,
                                             static_cast<double>(sample_n));
    double pop_var = ev.total_points() * ev.total_points() *
                     SrsProportionVariance(sel_child, ev.total_points(),
                                           child.cum_points);
    e.variance = share_var + distinct_share * distinct_share * pop_var;
  }
  TCQ_CHECK_INVARIANT(e.variance >= 0.0,
                      "projection term variance went negative");
  return e;
}

}  // namespace

Status ExecutorOptions::Validate() const {
  // Explicit finiteness checks everywhere: NaN compares false against
  // everything, so a plain `x < 0` guard lets NaN through (and +inf
  // passes any one-sided bound) — each would corrupt the deadline
  // arithmetic much later with no typed error.
  if (!std::isfinite(quota_s) || !(quota_s > 0.0)) {
    return Status::InvalidArgument(
        "time quota must be finite and positive; got " +
        std::to_string(quota_s));
  }
  if (!std::isfinite(epsilon_s) || !(epsilon_s > 0.0 && epsilon_s < 1.0)) {
    return Status::InvalidArgument(
        "epsilon_s must lie in (0, 1); got " + std::to_string(epsilon_s));
  }
  if (!std::isfinite(confidence) ||
      !(confidence > 0.0 && confidence < 1.0)) {
    return Status::InvalidArgument(
        "confidence must lie in (0, 1); got " + std::to_string(confidence));
  }
  if (threads < 1) {
    return Status::InvalidArgument(
        "threads must be >= 1 (it counts the calling thread); got " +
        std::to_string(threads));
  }
  if (max_stages < 1) {
    return Status::InvalidArgument("max_stages must be >= 1; got " +
                                   std::to_string(max_stages));
  }
  if (!std::isfinite(serve_deadline_s) || serve_deadline_s < 0.0) {
    return Status::InvalidArgument(
        "serve_deadline_s must be finite and >= 0 (0 means quota_s); got " +
        std::to_string(serve_deadline_s));
  }
  // Precision-stop targets: NaN compares false against the > 0 "enabled"
  // probes, so a NaN target would silently disable the stop the caller
  // asked for instead of erroring.
  if (!std::isfinite(precision.rel_halfwidth) ||
      precision.rel_halfwidth < 0.0 ||
      !std::isfinite(precision.abs_halfwidth) ||
      precision.abs_halfwidth < 0.0 ||
      !std::isfinite(precision.min_improvement) ||
      precision.min_improvement < 0.0) {
    return Status::InvalidArgument(
        "precision-stop targets must be finite and >= 0 (0 disables)");
  }
  if (precision.enabled() &&
      (!std::isfinite(precision.confidence) ||
       !(precision.confidence > 0.0 && precision.confidence < 1.0))) {
    return Status::InvalidArgument(
        "precision.confidence must lie in (0, 1); got " +
        std::to_string(precision.confidence));
  }
  TCQ_RETURN_NOT_OK(faults.Validate());
  TCQ_RETURN_NOT_OK(sel_predictor.Validate());
  return Status::OK();
}

Result<QueryResult> RunTimeConstrainedCount(const ExprPtr& expr,
                                            const Catalog& catalog,
                                            const ExecutorOptions& options) {
  return RunTimeConstrainedAggregate(expr, AggregateSpec::Count(), catalog,
                                     options);
}

Result<QueryResult> RunTimeConstrainedAggregate(
    const ExprPtr& expr, const AggregateSpec& aggregate,
    const Catalog& catalog, const ExecutorOptions& options) {
  TCQ_RETURN_NOT_OK(options.Validate());
  const double quota_s = options.quota_s;
  const ObsHandle& obs = options.obs;
  // Validate the expression and expand it into intersect-only terms.
  TCQ_ASSIGN_OR_RETURN(Schema schema, InferSchema(expr, catalog));
  int value_col = -1;
  if (aggregate.kind != AggregateSpec::Kind::kCount) {
    TCQ_ASSIGN_OR_RETURN(value_col, schema.IndexOf(aggregate.column));
  }
  TCQ_ASSIGN_OR_RETURN(std::vector<SignedTerm> terms, ExpandCount(expr));
  if (terms.empty()) {
    QueryResult r;
    r.ci.level = options.confidence;
    return r;
  }

  const bool wall = options.use_wall_clock;
  VirtualClock virtual_clock;
  WallClock wall_clock;
  const Clock& clock =
      wall ? static_cast<const Clock&>(wall_clock) : virtual_clock;
  if (obs.tracer != nullptr && !wall) {
    // Simulated runs stamp trace events with virtual time: the exported
    // trace becomes a pure function of the seed (golden-schema test).
    obs.tracer->UseClock(&virtual_clock);
  }
  CostLedger ledger(wall ? nullptr : &virtual_clock);
  Rng rng(options.seed);
  Rng noise_rng = rng.Fork();
  if (!wall) {
    ledger.AttachNoise(&noise_rng, options.physical.stage_speed_cv,
                       options.physical.block_read_jitter);
  }

  // Fault injection (DESIGN.md §10): a stateless oracle whose decisions
  // are pure in (fault_seed, relation, block, attempt) — the same fault
  // sequence replays at any thread count. All fault charges happen in
  // the post-barrier serial sections below, in relation-name order, so
  // the noise stream and clock stay deterministic. With `faults_on`
  // false every fault branch is dead and execution is bit-identical to
  // the historical path.
  const bool faults_on = options.faults.enabled;
  const FaultInjector injector(options.faults);
  const double fault_overhead_s =
      options.faults.ExpectedOverheadSeconds(options.physical.block_read_s);

  // Execution pool: `threads` counts the calling thread, so threads = N
  // creates N - 1 workers. An external pool (tcq::Session) may be wider
  // than this query asks for (high-water reuse): `threads` > 1 then caps
  // the participating threads per batch, while `threads` = 1 keeps the
  // historical meaning "use the pool's full width".
  ThreadPool* pool = options.pool;
  std::unique_ptr<ThreadPool> owned_pool;
  if (pool == nullptr && options.threads > 1) {
    owned_pool = std::make_unique<ThreadPool>(options.threads - 1);
    pool = owned_pool.get();
  }
  int max_width = 0;
  if (options.pool != nullptr && options.threads > 1) {
    max_width = std::min(options.threads, pool->width());
  }
  const int width =
      pool == nullptr ? 1 : (max_width > 0 ? max_width : pool->width());
  if (obs.metering()) {
    obs.metrics->gauge(metric_names::kEngineQuotaS)->Set(quota_s);
    obs.metrics->gauge("pool.width")->Set(static_cast<double>(width));
    if (pool != nullptr) {
      obs.metrics->gauge("pool.workers")
          ->Set(static_cast<double>(pool->workers()));
    }
  }

  // The cost model's worker count: virtual time always charges the serial
  // machine's work (keeping simulated runs bit-identical at any thread
  // count), so only wall-clock planning sees the real width.
  CostModel physical = options.physical;
  physical.workers = wall ? width : 1;
  // Layout-aware planning, wall-clock only: the columnar path evaluates
  // the per-block filter/sort/merge steps faster, so the initial
  // coefficients are divided by the measured speedup ratio. Simulated
  // charges never depend on the layout — scaling them would change the
  // planned fractions and with them the drawn blocks, breaking the
  // row/columnar bit-identity guarantee.
  AdaptiveCostModel::Options cost_options = options.cost;
  if (wall && options.layout == Layout::kColumnar) {
    cost_options.eval_speedup = physical.columnar_eval_speedup;
  }
  AdaptiveCostModel coefs(physical, cost_options);

  // Warm start: with a session cache attached, begin from the fitted
  // cost coefficients of the last run of a canonically equal query (the
  // coefficients' node ids only transfer between structurally identical
  // plans, hence the whole-query key). The stats snapshot taken here
  // turns the cache's cumulative counters into this run's deltas for the
  // metric export below.
  WarmStartCache* const cache = options.warm_cache;
  WarmStartStats cache_stats_before;
  if (cache != nullptr) {
    cache_stats_before = cache->Stats();
    std::optional<AdaptiveCostModel::Snapshot> snapshot =
        cache->LookupCostSnapshot(CanonicalSignature(*expr));
    if (snapshot.has_value()) coefs.RestoreSnapshot(*snapshot);
  }

  std::unique_ptr<TimeControlStrategy> strategy =
      MakeStrategy(options.strategy);

  const CombineVariance combine_rule =
      options.conservative_term_variance ? CombineVariance::kConservative
                                         : CombineVariance::kIndependent;

  // Terms that are bare scans have exactly known aggregates (the catalog
  // knows |r|); they are priced at zero and never sampled. COUNT(r1 ∪ r2)
  // thus spends its whole quota on the r1 ∩ r2 term.
  std::vector<SignedTerm> sampled_terms;
  std::vector<CountEstimate> constant_estimates;
  std::vector<int> constant_signs;
  for (const SignedTerm& term : terms) {
    if (term.expr->kind != ExprKind::kScan) {
      sampled_terms.push_back(term);
      continue;
    }
    TCQ_ASSIGN_OR_RETURN(RelationPtr rel, catalog.Find(term.expr->relation));
    CountEstimate constant;
    constant.total_points = static_cast<double>(rel->NumTuples());
    if (aggregate.kind == AggregateSpec::Kind::kCount) {
      constant.value = static_cast<double>(rel->NumTuples());
      constant.hits = rel->NumTuples();
    }
    constant_estimates.push_back(constant);
    constant_signs.push_back(term.sign);
  }
  // For SUM/AVG the scan term's exact value needs one pass over the
  // relation; keep those sampled for simplicity (rare in practice).
  if (aggregate.kind != AggregateSpec::Kind::kCount) {
    sampled_terms = terms;
    constant_estimates.clear();
    constant_signs.clear();
  }
  terms = std::move(sampled_terms);
  if (obs.observer != nullptr) {
    obs.observer->OnQueryBegin(quota_s, static_cast<int>(terms.size()));
  }
  if (terms.empty()) {
    // Fully constant query (e.g. COUNT(r1)).
    CountEstimate combined = CombineSignedEstimates(
        constant_signs, constant_estimates, obs, combine_rule);
    QueryResult r;
    r.estimate = combined.value;
    r.variance = combined.variance;
    r.ci = NormalConfidenceInterval(combined, options.confidence);
    r.stages_counted = 0;
    r.utilization = 0.0;
    if (obs.observer != nullptr) {
      obs.observer->OnQueryEnd(r.estimate, r.variance, false);
    }
    return r;
  }

  // Build one staged evaluator per term; collect the relations involved.
  // Each term charges a private clockless ledger so the evaluators can run
  // on separate workers without racing on the shared clock or noise
  // stream; the engine folds every term's charges into the virtual clock
  // in term order after each stage's barrier.
  std::vector<std::unique_ptr<StagedTermEvaluator>> evaluators;
  std::vector<std::unique_ptr<CostLedger>> term_ledgers;
  std::vector<int> signs;
  std::map<std::string, std::unique_ptr<BlockSampler>> samplers;
  for (const SignedTerm& term : terms) {
    term_ledgers.push_back(std::make_unique<CostLedger>());
    TCQ_ASSIGN_OR_RETURN(
        auto ev, StagedTermEvaluator::Create(term.expr, catalog,
                                             options.fulfillment,
                                             term_ledgers.back().get(),
                                             physical));
    if (value_col >= 0) {
      TCQ_RETURN_NOT_OK(ev->TrackValueColumn(value_col));
    }
    if (wall) ev->MeasureStepsWith(&clock);
    ev->UseThreadPool(pool, max_width);
    ev->SetLayout(options.layout);
    ev->SetObs(obs, static_cast<int>(evaluators.size()));
    std::vector<std::string> scans;
    CollectScans(term.expr, &scans);
    for (const std::string& name : scans) {
      if (samplers.count(name) == 0) {
        TCQ_ASSIGN_OR_RETURN(RelationPtr rel, catalog.Find(name));
        // With a warm cache the sampler replays the relation's pooled
        // prefix before drawing fresh blocks (see BlockSampler); an
        // empty pool degenerates to the historical cold sampler.
        RelationSamplePool* rel_pool =
            cache != nullptr ? cache->PoolFor(name, rel->NumBlocks())
                             : nullptr;
        samplers[name] =
            std::make_unique<BlockSampler>(std::move(rel), rel_pool);
        samplers[name]->SetMetrics(obs.metrics);
      }
    }
    evaluators.push_back(std::move(ev));
    signs.push_back(term.sign);
  }

  // Warm-start selectivity priors: one lookup per operator node before
  // the stage loop, keyed by the node subtree's canonical signature. The
  // resulting per-term maps seed stage-0 of ReviseSelectivities; once a
  // node has its own samples the priors are ignored.
  std::vector<std::map<int, double>> term_priors(evaluators.size());
  if (cache != nullptr) {
    for (size_t t = 0; t < evaluators.size(); ++t) {
      for (const StagedNode* node : evaluators[t]->NodesPreOrder()) {
        if (node->kind == ExprKind::kScan) continue;
        std::optional<double> prior =
            cache->LookupPrior(CanonicalSignature(*node->expr));
        if (prior.has_value()) term_priors[t][node->id] = *prior;
      }
    }
  }

  // Hybrid selectivity predictor (DESIGN.md §12): session-lifetime when a
  // warm cache is attached (its history persists alongside the priors),
  // query-local otherwise. freeze_initial is the prestored-statistics
  // ablation — predictions would fight the frozen values, so it wins.
  // With the predictor off, nothing below this block ever runs and the
  // stage loop is bit-identical to the historical path.
  SelPredictor* predictor = nullptr;
  std::unique_ptr<SelPredictor> query_predictor;
  if (options.sel_predictor.enabled && !options.selectivity.freeze_initial) {
    if (cache != nullptr) {
      predictor = cache->PredictorFor(options.sel_predictor);
    } else {
      query_predictor =
          std::make_unique<SelPredictor>(options.sel_predictor);
      predictor = query_predictor.get();
    }
    predictor->BeginQuery(CanonicalSignature(*expr));
  }
  // Per-node signature and structural keys, computed once per run.
  std::vector<std::map<int, CacheKey>> node_keys(evaluators.size());
  std::vector<std::map<int, std::string>> node_structs(evaluators.size());
  if (predictor != nullptr) {
    for (size_t t = 0; t < evaluators.size(); ++t) {
      for (const StagedNode* node : evaluators[t]->NodesPreOrder()) {
        if (node->kind == ExprKind::kScan) continue;
        node_keys[t].emplace(node->id, CanonicalSignature(*node->expr));
        node_structs[t].emplace(node->id,
                                StructuralSignature(*node->expr));
      }
    }
  }

  const Deadline deadline = Deadline::StartingNow(clock, quota_s);

  TraceSpan query_span(obs.tracer, "query", "engine");
  query_span.Arg("terms", static_cast<double>(evaluators.size()));
  query_span.Arg("quota_s", quota_s);

  QueryResult result;
  result.ci.level = options.confidence;
  double counted_elapsed = 0.0;
  double previous_estimate = std::nan("");
  // Fault bookkeeping across stages: losses inside *counted* stages feed
  // the variance widening; the per-relation tallies feed the serving
  // layer's circuit breaker.
  int64_t lost_counted = 0;
  std::map<std::string, RelationFaultCounts> rel_faults;
  // Current fulfillment mode; may downgrade to partial once (§5.B hybrid).
  Fulfillment current_mode = options.fulfillment;

  for (int stage = 0; stage < options.max_stages; ++stage) {
    double time_left = deadline.Remaining(clock);
    if (time_left <= 0.0) break;

    // Largest drawable fraction and the one-block fraction step.
    double f_max = 0.0;
    double min_step = 1.0;
    for (const auto& [name, sampler] : samplers) {
      double total = static_cast<double>(sampler->total_blocks());
      if (total <= 0.0) continue;
      f_max = std::max(
          f_max, static_cast<double>(sampler->remaining_blocks()) / total);
      min_step = std::min(min_step, 1.0 / total);
    }
    if (f_max <= 0.0) break;  // every relation fully sampled

    TraceSpan stage_span(obs.tracer, "stage", "engine");
    stage_span.Arg("index", static_cast<double>(stage));
    stage_span.Arg("time_left_s", time_left);

    // Figure 3.3: revise per-operator selectivities from all samples.
    std::vector<std::map<int, double>> sel_prev;
    sel_prev.reserve(evaluators.size());
    for (size_t t = 0; t < evaluators.size(); ++t) {
      sel_prev.push_back(ReviseSelectivities(
          *evaluators[t], options.selectivity, obs,
          cache != nullptr ? &term_priors[t] : nullptr));
    }

    // Hybrid predictor: let the chooser override each node's planning
    // selectivity and collect its per-node inflation widths for
    // ComputeSelPlus. Serial section, node order — deterministic at a
    // fixed seed and cache state at any thread count.
    std::vector<std::map<int, double>> sel_widths(evaluators.size());
    std::vector<std::map<int, SelPrediction>> stage_predictions(
        evaluators.size());
    if (predictor != nullptr) {
      for (size_t t = 0; t < evaluators.size(); ++t) {
        for (const StagedNode* node : evaluators[t]->NodesPreOrder()) {
          if (node->kind == ExprKind::kScan) continue;
          std::optional<double> observed;
          if (evaluators[t]->num_stages() > 0 && node->cum_points > 0.0) {
            auto sit = sel_prev[t].find(node->id);
            if (sit != sel_prev[t].end()) observed = sit->second;
          }
          std::optional<double> prior;
          auto pit = term_priors[t].find(node->id);
          if (pit != term_priors[t].end()) {
            prior = SanitizedStagePrior(pit->second, node->total_points,
                                        options.selectivity.zero_hit_beta);
          }
          double fallback =
              InitialSelectivity(*node, options.selectivity, nullptr);
          SelPrediction p = predictor->Predict(
              node_keys[t].at(node->id), node_structs[t].at(node->id),
              observed, prior, fallback);
          sel_prev[t][node->id] = p.selectivity;
          sel_widths[t][node->id] = p.width_scale;
          stage_predictions[t].emplace(node->id, p);
          if (obs.metering()) {
            obs.metrics->counter(metric_names::kPredictorPredictions)
                ->Increment();
            obs.metrics
                ->counter(p.history_hit
                              ? metric_names::kPredictorHistoryHits
                              : metric_names::kPredictorHistoryMisses)
                ->Increment();
            obs.metrics->histogram(metric_names::kPredictorWidthScale)
                ->Record(p.width_scale);
          }
        }
      }
    }

    // Full-query cost formula: per-stage overhead + block fetches (priced
    // once per relation) + every term's operator costs.
    auto fetch_cost = [&](double f) {
      double seconds = 0.0;
      for (const auto& [name, sampler] : samplers) {
        int64_t d_new = std::min<int64_t>(
            BlocksForFraction(f, sampler->total_blocks()),
            sampler->remaining_blocks());
        double coef = coefs.Coef(kGlobalCostNode, CostStep::kFetch);
        // Expected fault overhead (retry re-reads, backoff, straggler
        // inflation) is priced into the plan: the time-control loop
        // replans around retries instead of discovering them mid-stage
        // and blowing the hard deadline.
        if (faults_on) {
          seconds += static_cast<double>(d_new) * fault_overhead_s;
        }
        if (!wall && cache != nullptr) {
          // The next pooled_remaining() draws replay cached blocks at the
          // discounted rate; pricing them as full reads would make the
          // planner under-fill warm stages.
          int64_t replayed =
              std::min<int64_t>(d_new, sampler->pooled_remaining());
          int64_t fresh = d_new - replayed;
          seconds += (static_cast<double>(replayed) *
                          options.physical.cached_read_factor +
                      static_cast<double>(fresh)) *
                     coef;
        } else {
          seconds += static_cast<double>(d_new) * coef;
        }
      }
      return seconds;
    };
    auto qcost = [&](double f, double d_beta) -> Result<double> {
      double seconds = coefs.Coef(kGlobalCostNode, CostStep::kSetup) +
                       fetch_cost(f);
      for (size_t t = 0; t < evaluators.size(); ++t) {
        std::map<int, double> sel_plus = ComputeSelPlus(
            *evaluators[t], sel_prev[t], f, d_beta, current_mode,
            predictor != nullptr ? &sel_widths[t] : nullptr);
        TCQ_ASSIGN_OR_RETURN(
            TermStagePrediction p,
            PredictTermStageCost(*evaluators[t], f, sel_plus, coefs,
                                 current_mode));
        seconds += p.seconds;
      }
      return seconds;
    };
    // First-order std-dev of the stage cost: per-operator selectivity
    // sigmas propagated through the cost formula, combined with the
    // conservative perfect-correlation bound (§3.3.1's covariances are
    // upper-bounded rather than estimated).
    auto qcost_sigma = [&](double f) -> Result<double> {
      double sigma = 0.0;
      for (size_t t = 0; t < evaluators.size(); ++t) {
        std::map<int, NodePoints> points =
            PredictNodePoints(*evaluators[t], f, current_mode);
        TCQ_ASSIGN_OR_RETURN(
            TermStagePrediction base,
            PredictTermStageCost(*evaluators[t], f, sel_prev[t], coefs,
                                 current_mode));
        for (const auto& [id, sel] : sel_prev[t]) {
          auto it = points.find(id);
          if (it == points.end()) continue;
          double sd = std::sqrt(SrsProportionVariance(
              sel, it->second.remaining_points, it->second.new_points));
          if (sd <= 0.0) continue;
          std::map<int, double> bumped = sel_prev[t];
          bumped[id] = std::min(1.0, sel + sd);
          TCQ_ASSIGN_OR_RETURN(
              TermStagePrediction hi,
              PredictTermStageCost(*evaluators[t], f, bumped, coefs,
                                   current_mode));
          sigma += std::max(0.0, hi.seconds - base.seconds);
        }
      }
      return sigma;
    };

    StagePlanContext context;
    context.next_stage = stage;
    context.time_left = time_left;
    context.quota = quota_s;
    context.f_max = f_max;
    context.f_min_step = min_step;
    context.epsilon = options.epsilon_s;
    context.predictor_active = predictor != nullptr;
    context.obs = obs;
    context.qcost = qcost;
    context.qcost_sigma = qcost_sigma;

    StagePlan plan;
    {
      TraceSpan plan_span(obs.tracer, "plan_stage", "engine");
      TCQ_ASSIGN_OR_RETURN(plan, strategy->PlanStage(context));
      plan_span.Arg("fraction", plan.fraction);
      plan_span.Arg("predicted_s", plan.predicted_seconds);
    }
    if (plan.fraction <= 0.0) {
      if (options.final_partial_stages &&
          current_mode == Fulfillment::kFull) {
        // §5.B hybrid: a full stage no longer fits, but a cheap partial
        // (new×new only) stage might still use the residual time.
        current_mode = Fulfillment::kPartial;
        --stage;  // re-plan this stage under the partial cost formula
        continue;
      }
      result.stopped_no_affordable_stage = true;
      break;
    }
    // Strategies must hand back a usable sampling fraction: (0, 1] and
    // no larger than what is left to draw (paper §3.1 selectivity
    // revision assumes stages sample fresh blocks).
    TCQ_CHECK_INVARIANT(plan.fraction > 0.0 && plan.fraction <= 1.0,
                        "stage plan fraction outside (0, 1]");

    // ---- Execute the stage. ----
    double stage_start = clock.Now();
    ledger.BeginStage();
    if (!wall) {
      // Simulated per-stage bookkeeping overhead; under a wall clock the
      // planning work above took real time already.
      ledger.Charge(CostCategory::kStageOverhead,
                    options.physical.stage_overhead_s);
      coefs.Observe(kGlobalCostNode, CostStep::kSetup, 1.0,
                    options.physical.stage_overhead_s);
    } else {
      coefs.Observe(kGlobalCostNode, CostStep::kSetup, 1.0,
                    clock.Now() - stage_start);
    }

    // Realized work/span of this stage's fan-out sections (η re-fit).
    ParallelStats stage_parallel;

    // Parallel block draws: one task per relation, each drawing from its
    // own deterministic substream derived from (seed, relation, stage).
    // Ledger charges — which consume the per-block jitter noise — and
    // coefficient observations happen post-barrier in relation-name
    // order, so neither depends on the worker count.
    std::map<std::string, std::vector<const Block*>> stage_blocks;
    int64_t blocks_drawn = 0;
    int64_t blocks_replayed = 0;
    int64_t stage_transients = 0;
    int64_t stage_retries = 0;
    int64_t stage_lost = 0;
    int64_t stage_stragglers = 0;
    double stage_fault_delay_s = 0.0;
    {
      TraceSpan draw_span(obs.tracer, "draw_blocks", "engine");
      struct DrawSlot {
        std::string name;
        BlockSampler* sampler = nullptr;
        int64_t count = 0;
        std::vector<const Block*> blocks;
        std::vector<uint32_t> indices;  // fault path: drawn block ids
        Status status;
        double seconds = 0.0;
      };
      std::vector<DrawSlot> draws;
      draws.reserve(samplers.size());
      for (auto& [name, sampler] : samplers) {
        DrawSlot slot;
        slot.name = name;
        slot.sampler = sampler.get();
        slot.count = std::min<int64_t>(
            BlocksForFraction(plan.fraction, sampler->total_blocks()),
            sampler->remaining_blocks());
        draws.push_back(std::move(slot));
      }
      const uint64_t seed = options.seed;
      const uint64_t stage_idx = static_cast<uint64_t>(stage);
      std::vector<std::function<void()>> tasks;
      tasks.reserve(draws.size());
      for (DrawSlot& slot : draws) {
        DrawSlot* sp = &slot;
        if (faults_on) {
          // Fault path: the draw is identical, but blocks come back with
          // their indices through the checked storage read API (the
          // injector keys on the physical block identity).
          tasks.push_back([sp, seed, stage_idx] {
            auto start = std::chrono::steady_clock::now();
            Result<std::vector<DrawnBlock>> drawn =
                sp->sampler->DrawSubstreamChecked(sp->count, seed,
                                                  stage_idx);
            if (!drawn.ok()) {
              sp->status = drawn.status();
            } else {
              sp->blocks.reserve(drawn->size());
              sp->indices.reserve(drawn->size());
              for (const DrawnBlock& b : *drawn) {
                sp->indices.push_back(b.index);
                sp->blocks.push_back(b.block);
              }
            }
            sp->seconds = SecondsSince(start);
          });
        } else {
          tasks.push_back([sp, seed, stage_idx] {
            auto start = std::chrono::steady_clock::now();
            sp->blocks =
                sp->sampler->DrawSubstream(sp->count, seed, stage_idx);
            sp->seconds = SecondsSince(start);
          });
        }
      }
      auto section_start = std::chrono::steady_clock::now();
      RunTasks(pool, &tasks, max_width);
      stage_parallel.span_seconds += SecondsSince(section_start);
      stage_parallel.tasks += static_cast<int>(tasks.size());
      // Post-barrier fault resolution happens in this serial loop
      // (relation-name order): probes, retry charging, and the noise
      // stream are independent of the worker count.
      TraceSpan fault_span(faults_on ? obs.tracer : nullptr,
                           "inject_faults", "fault");
      double wall_fault_sleep_s = 0.0;
      for (DrawSlot& slot : draws) {
        TCQ_RETURN_NOT_OK(slot.status);
        stage_parallel.work_seconds += slot.seconds;
        blocks_drawn += static_cast<int64_t>(slot.blocks.size());
        int64_t replayed = slot.sampler->last_draw_replayed();
        blocks_replayed += replayed;
        if (!wall) {
          // Replayed blocks come from the session's sample cache and
          // charge the discounted rate; fresh draws pay a full random
          // read. The charge count — and with it the per-block jitter
          // stream — is the same replayed + fresh split or not, and with
          // no (or an empty) warm cache `replayed` is zero, so the first
          // ChargeN is a no-op and the charging is bit-identical to the
          // historical single call.
          int64_t fresh =
              static_cast<int64_t>(slot.blocks.size()) - replayed;
          ledger.ChargeN(CostCategory::kBlockRead, replayed,
                         options.physical.block_read_s *
                             options.physical.cached_read_factor);
          ledger.ChargeN(CostCategory::kBlockRead, fresh,
                         options.physical.block_read_s);
        }
        // The fetch coefficient keeps meaning "seconds per *fresh* read":
        // in simulation the observation feeds the nominal full-read cost
        // regardless of the replay split, and fetch_cost applies the
        // replay discount itself.
        coefs.Observe(kGlobalCostNode, CostStep::kFetch,
                      static_cast<double>(slot.blocks.size()),
                      wall ? slot.seconds
                           : static_cast<double>(slot.blocks.size()) *
                                 options.physical.block_read_s);
        if (faults_on) {
          // Resolve each drawn block's read through the injector: retry
          // transient faults with exponential backoff, drop permanently
          // unreadable blocks from the frame, and charge every retry,
          // backoff, and straggler second to the ledger so the deadline
          // arithmetic sees the fault overhead.
          std::vector<const Block*> survivors;
          survivors.reserve(slot.blocks.size());
          RelationFaultCounts& rf = rel_faults[slot.name];
          rf.relation = slot.name;
          for (size_t i = 0; i < slot.blocks.size(); ++i) {
            const BlockReadOutcome outcome = ReadBlockWithFaults(
                injector, slot.name, static_cast<int64_t>(slot.indices[i]),
                options.physical.block_read_s);
            rf.read_attempts += outcome.read_attempts;
            const int64_t retries = outcome.read_attempts - 1;
            if (retries > 0) {
              stage_retries += retries;
              // A retry re-reads the block: charged like any other read
              // (consuming per-read jitter) but never a new draw —
              // blocks_drawn counts this block exactly once.
              if (!wall) {
                ledger.ChargeN(CostCategory::kBlockRead, retries,
                               options.physical.block_read_s);
              }
            }
            stage_transients += outcome.transient_faults;
            rf.transient_faults += outcome.transient_faults;
            const double delay_s =
                outcome.backoff_s + outcome.straggler_extra_s;
            if (delay_s > 0.0) {
              stage_fault_delay_s += delay_s;
              if (!wall) {
                ledger.Charge(CostCategory::kFaultDelay, delay_s);
              } else {
                wall_fault_sleep_s += delay_s;
              }
            }
            if (outcome.lost) {
              ++stage_lost;
              ++rf.blocks_lost;
              if (obs.tracing()) {
                obs.tracer->Instant("block_lost", "fault", "block",
                                    static_cast<double>(slot.indices[i]));
              }
              continue;
            }
            if (outcome.straggler) {
              ++stage_stragglers;
              ++rf.stragglers;
            }
            survivors.push_back(slot.blocks[i]);
          }
          slot.blocks = std::move(survivors);
        }
        stage_blocks[slot.name] = std::move(slot.blocks);
      }
      if (wall && wall_fault_sleep_s > 0.0) {
        // Wall-clock runs pay fault latency in real time: the deadline,
        // the strategy's outcome feedback, and the serving layer all see
        // the backoff/straggler seconds.
        std::this_thread::sleep_for(
            std::chrono::duration<double>(wall_fault_sleep_s));
      }
      if (faults_on) {
        fault_span.Arg("transient", static_cast<double>(stage_transients));
        fault_span.Arg("lost", static_cast<double>(stage_lost));
      }
      draw_span.Arg("blocks", static_cast<double>(blocks_drawn));
      if (cache != nullptr) {
        draw_span.Arg("replayed", static_cast<double>(blocks_replayed));
      }
    }

    // Parallel term evaluation: every inclusion–exclusion term runs as
    // its own task (each term's merge pairs fan out further inside the
    // evaluator). Term ledgers are synced to this stage's machine-speed
    // factor up front; statuses, clock advancement, and coefficient
    // re-fits reduce in term order after the barrier.
    std::vector<double> term_prev_totals(evaluators.size(), 0.0);
    for (size_t t = 0; t < evaluators.size(); ++t) {
      term_ledgers[t]->SetStageFactor(ledger.current_stage_factor());
      term_prev_totals[t] = term_ledgers[t]->GrandTotal();
    }
    {
      TraceSpan eval_span(obs.tracer, "eval_terms", "engine");
      std::vector<Status> statuses(evaluators.size());
      std::vector<double> durs(evaluators.size(), 0.0);
      std::vector<std::function<void()>> tasks;
      tasks.reserve(evaluators.size());
      for (size_t t = 0; t < evaluators.size(); ++t) {
        StagedTermEvaluator* ev = evaluators[t].get();
        Status* status = &statuses[t];
        double* dur = &durs[t];
        const auto* blocks = &stage_blocks;
        const Fulfillment mode = current_mode;
        tasks.push_back([ev, status, dur, blocks, mode] {
          auto start = std::chrono::steady_clock::now();
          *status = ev->ExecuteStageWithMode(*blocks, mode);
          *dur = SecondsSince(start);
        });
      }
      auto section_start = std::chrono::steady_clock::now();
      RunTasks(pool, &tasks, max_width);
      stage_parallel.span_seconds += SecondsSince(section_start);
      stage_parallel.tasks += static_cast<int>(tasks.size());
      for (size_t t = 0; t < evaluators.size(); ++t) {
        TCQ_RETURN_NOT_OK(statuses[t]);
        stage_parallel.work_seconds += durs[t];
      }
      // The term ledgers fold into the virtual clock inside this span so
      // its duration covers the stage's simulated evaluation cost.
      for (size_t t = 0; t < evaluators.size(); ++t) {
        double delta = term_ledgers[t]->GrandTotal() - term_prev_totals[t];
        if (!wall && delta > 0.0) virtual_clock.Advance(delta);
        ObserveTermStage(*evaluators[t], &coefs);
      }
    }
    if (predictor != nullptr) {
      // Score this stage's predictions against the realized per-node
      // stage selectivities and fold them into the history tables.
      // Serial section, node order — deterministic. Aborted stages still
      // update: their samples are real even though they never count.
      for (size_t t = 0; t < evaluators.size(); ++t) {
        for (const StagedNode* node : evaluators[t]->NodesPreOrder()) {
          if (node->kind == ExprKind::kScan) continue;
          if (node->stages.empty()) continue;
          const NodeStageRecord& rec = node->stages.back();
          if (rec.new_points <= 0.0) continue;
          double realized =
              static_cast<double>(rec.new_tuples) / rec.new_points;
          predictor->Update(node_keys[t].at(node->id),
                            node_structs[t].at(node->id), realized);
          if (obs.metering()) {
            auto it = stage_predictions[t].find(node->id);
            if (it != stage_predictions[t].end()) {
              obs.metrics->histogram(metric_names::kPredictorAbsError)
                  ->Record(std::abs(it->second.selectivity - realized));
            }
          }
        }
      }
    }
    if (wall) {
      // Re-fit the parallel-efficiency coefficient η from the realized
      // speedup of this stage's fan-out sections.
      coefs.ObserveParallelism(stage_parallel.work_seconds,
                               stage_parallel.span_seconds);
    }
    double stage_end = clock.Now();
    double actual = stage_end - stage_start;
    bool within = deadline.Remaining(clock) >= 0.0;
    strategy->OnStageOutcome(plan.predicted_seconds, actual, !within);

    // ---- Recompute the combined estimate. ----
    std::vector<CountEstimate> term_estimates;
    term_estimates.reserve(evaluators.size());
    for (const auto& ev : evaluators) {
      term_estimates.push_back(EstimateTerm(*ev));
    }
    for (size_t c = 0; c < constant_estimates.size(); ++c) {
      term_estimates.push_back(constant_estimates[c]);
    }
    std::vector<int> all_signs = signs;
    all_signs.insert(all_signs.end(), constant_signs.begin(),
                     constant_signs.end());
    CountEstimate combined =
        CombineSignedEstimates(all_signs, term_estimates, obs, combine_rule);
    if (aggregate.kind != AggregateSpec::Kind::kCount) {
      std::vector<CountEstimate> sum_estimates;
      sum_estimates.reserve(evaluators.size());
      for (const auto& ev : evaluators) {
        sum_estimates.push_back(ClusterSumEstimate(
            ev->total_space_blocks(), ev->cum_space_blocks(),
            ev->cum_value_sum(), ev->cum_value_sq_sum(), ev->cum_points(),
            ev->total_points()));
      }
      CountEstimate sum_combined =
          CombineSignedEstimates(signs, sum_estimates, combine_rule);
      if (aggregate.kind == AggregateSpec::Kind::kSum) {
        combined = sum_combined;
      } else {
        // AVG = SUM / COUNT, delta-method variance (covariance ignored).
        CountEstimate avg;
        avg.points = combined.points;
        avg.total_points = combined.total_points;
        if (combined.value != 0.0) {
          double ratio = sum_combined.value / combined.value;
          avg.value = ratio;
          avg.variance = (sum_combined.variance +
                          ratio * ratio * combined.variance) /
                         (combined.value * combined.value);
        }
        combined = avg;
      }
    }

    // Degraded-answer accounting (DESIGN.md §10): fault decisions are
    // content-agnostic, so the surviving blocks remain a uniform
    // without-replacement sample and the cluster estimator stays
    // unbiased over the reduced frame. The smaller effective sample is
    // priced by widening the variance by (1 + lost/read) over the
    // counted stages (including this one).
    double fault_widen = 1.0;
    if (faults_on) {
      const int64_t read_blocks =
          result.blocks_sampled + (blocks_drawn - stage_lost);
      const int64_t lost_blocks = lost_counted + stage_lost;
      if (lost_blocks > 0) {
        fault_widen =
            1.0 + static_cast<double>(lost_blocks) /
                      static_cast<double>(std::max<int64_t>(1, read_blocks));
        combined.variance *= fault_widen;
      }
    }

    StageReport report;
    report.index = stage;
    report.time_left_before = time_left;
    report.planned_fraction = plan.fraction;
    report.d_beta_used = plan.d_beta_used;
    report.predicted_seconds = plan.predicted_seconds;
    report.actual_seconds = actual;
    report.blocks_drawn = blocks_drawn;
    report.within_quota = within;
    report.estimate_after = combined.value;
    report.variance_after = combined.variance;
    report.quota_s = quota_s;
    report.layout = options.layout;
    // In simulation the clock advances only inside the stage, so these
    // spends telescope: Σ ledger_spend_s over all reports equals the
    // query's elapsed_seconds (the acceptance identity).
    report.ledger_spend_s = stage_end - stage_start;
    report.cumulative_spend_s = deadline.Elapsed(clock);
    report.work_seconds = stage_parallel.work_seconds;
    report.span_seconds = stage_parallel.span_seconds;
    report.parallel_tasks = stage_parallel.tasks;
    report.transient_faults = stage_transients;
    report.retries = stage_retries;
    report.blocks_lost = stage_lost;
    report.stragglers = stage_stragglers;
    report.fault_delay_s = stage_fault_delay_s;
    report.predictor_used = plan.predictor_used;
    for (size_t t = 0; t < evaluators.size(); ++t) {
      for (const StagedNode* node : evaluators[t]->NodesPreOrder()) {
        auto it = sel_prev[t].find(node->id);
        if (it == sel_prev[t].end()) continue;
        OperatorSelectivity sel;
        sel.term = static_cast<int>(t);
        sel.node = node->id;
        sel.op = std::string(ExprKindName(node->kind));
        sel.selectivity = it->second;
        if (predictor != nullptr) {
          auto pit = stage_predictions[t].find(node->id);
          if (pit != stage_predictions[t].end()) {
            sel.component =
                std::string(SelComponentName(pit->second.component));
            sel.confidence = pit->second.confidence;
            sel.width_scale = pit->second.width_scale;
          }
        }
        report.selectivities.push_back(std::move(sel));
      }
    }
    result.stage_reports.push_back(report);
    ++result.stages_run;
    result.faults.transient_faults += stage_transients;
    result.faults.retries += stage_retries;
    result.faults.blocks_lost += stage_lost;
    result.faults.stragglers += stage_stragglers;
    result.faults.fault_delay_s += stage_fault_delay_s;
    if (obs.metering()) {
      obs.metrics->counter(metric_names::kEngineStagesRun)->Increment();
      obs.metrics->counter(metric_names::kEngineBlocksDrawn)
          ->Add(blocks_drawn);
      if (faults_on) {
        // Deterministic at a fixed fault seed: every increment happens
        // in this serial section, in relation-name order.
        obs.metrics->counter(metric_names::kFaultTransient)
            ->Add(stage_transients);
        obs.metrics->counter(metric_names::kFaultRetries)->Add(stage_retries);
        obs.metrics->counter(metric_names::kFaultBlocksLost)->Add(stage_lost);
        obs.metrics->counter(metric_names::kFaultStragglers)
            ->Add(stage_stragglers);
      }
      obs.metrics->gauge(metric_names::kEngineSpendS)
          ->Set(report.cumulative_spend_s);
      obs.metrics->gauge(metric_names::kEngineTimeLeftS)
          ->Set(deadline.Remaining(clock));
      for (const OperatorSelectivity& sel : report.selectivities) {
        char name[64];
        std::snprintf(name, sizeof(name), "timectrl.sel.t%d.n%d", sel.term,
                      sel.node);
        obs.metrics->gauge(name)->Set(sel.selectivity);
      }
    }
    if (obs.tracing()) {
      obs.tracer->Counter("ledger_spend_s", report.cumulative_spend_s);
      obs.tracer->Counter("estimate", combined.value);
      obs.tracer->Counter("blocks_drawn",
                          static_cast<double>(result.blocks_sampled +
                                              blocks_drawn));
    }
    if (obs.observer != nullptr) {
      obs.observer->OnStage(result.stage_reports.back());
    }

    if (!within) {
      result.overspent = true;
      result.overspend_seconds = deadline.Elapsed(clock) - quota_s;
      if (options.deadline_mode == DeadlineMode::kHard) {
        // The interrupted stage is aborted: its samples are wasted and the
        // previous stage's estimate stands. The wasted draws still hit
        // the disk (and the blocks_drawn metric) — account for them so
        // blocks_sampled + blocks_wasted reconciles with the per-stage
        // reports and the `engine.blocks_drawn` counter.
        result.blocks_wasted += blocks_drawn;
        break;
      }
      // Soft deadline: the finished stage counts, then we stop. Lost
      // blocks cost I/O but contribute nothing to the estimate — they
      // land in blocks_wasted, keeping the reconciliation identity
      // blocks_sampled + blocks_wasted == Σ stage blocks_drawn.
      result.estimate = combined.value;
      result.variance = combined.variance;
      ++result.stages_counted;
      result.blocks_sampled += blocks_drawn - stage_lost;
      result.blocks_wasted += stage_lost;
      lost_counted += stage_lost;
      result.faults.variance_widening = fault_widen;
      counted_elapsed = deadline.Elapsed(clock);
      break;
    }

    result.estimate = combined.value;
    result.variance = combined.variance;
    ++result.stages_counted;
    result.blocks_sampled += blocks_drawn - stage_lost;
    result.blocks_wasted += stage_lost;
    lost_counted += stage_lost;
    result.faults.variance_widening = fault_widen;
    counted_elapsed = deadline.Elapsed(clock);
    // In simulation the clock advances only by ledger charges, so a
    // stage that passed the within-quota check cannot have pushed the
    // ledger past the quota (the paper's hard-constraint promise).
    TCQ_CHECK_INVARIANT(wall || counted_elapsed <= quota_s,
                        "ledger exceeded the time quota in a counted stage");

    if (ShouldStopForPrecision(options.precision, combined,
                               previous_estimate)) {
      result.stopped_for_precision = true;
      break;
    }
    previous_estimate = combined.value;
  }

  CountEstimate final_estimate;
  final_estimate.value = result.estimate;
  final_estimate.variance = result.variance;
  result.ci = NormalConfidenceInterval(final_estimate, options.confidence);
  result.elapsed_seconds = deadline.Elapsed(clock);
  if (faults_on) {
    result.degraded = result.faults.blocks_lost > 0;
    result.faults.per_relation.reserve(rel_faults.size());
    for (auto& [name, counts] : rel_faults) {
      (void)name;
      result.faults.per_relation.push_back(std::move(counts));
    }
    if (obs.metering()) {
      obs.metrics->gauge(metric_names::kFaultDelayS)
          ->Set(result.faults.fault_delay_s);
      obs.metrics->gauge(metric_names::kFaultVarianceWidening)
          ->Set(result.faults.variance_widening);
    }
  }
  // The true ratio, deliberately unclamped: under a soft deadline the
  // counted final stage may overrun the quota, and utilization > 1 is
  // exactly the overspend signal callers need to see. Hard-deadline runs
  // never exceed 1 (counted stages cannot pass the quota — see the
  // invariant above); display paths clamp for presentation.
  result.utilization = quota_s > 0.0 ? counted_elapsed / quota_s : 0.0;

  if (cache != nullptr) {
    // Feed the cache for the next query: every operator node that sampled
    // points records its revised selectivity (exactly what the next stage
    // of *this* run would have planned with), and the fitted cost
    // coefficients are snapshotted under the whole-query signature.
    for (size_t t = 0; t < evaluators.size(); ++t) {
      if (evaluators[t]->num_stages() == 0) continue;
      std::map<int, double> revised =
          ReviseSelectivities(*evaluators[t], options.selectivity);
      for (const StagedNode* node : evaluators[t]->NodesPreOrder()) {
        if (node->kind == ExprKind::kScan) continue;
        if (node->cum_points <= 0.0) continue;
        auto it = revised.find(node->id);
        if (it == revised.end()) continue;
        cache->RecordPrior(CanonicalSignature(*node->expr), it->second);
      }
    }
    cache->RecordCostSnapshot(CanonicalSignature(*expr),
                              coefs.ExportSnapshot());
    if (obs.metering()) {
      // This run's deltas against the session-cumulative cache counters,
      // plus the pool-size gauge. All deterministic at a fixed seed and
      // cache state: replay counts depend only on pool contents and the
      // plan, never on the worker count.
      WarmStartStats after = cache->Stats();
      obs.metrics->counter(metric_names::kCacheBlocksReplayed)
          ->Add(after.replayed_blocks - cache_stats_before.replayed_blocks);
      obs.metrics->counter(metric_names::kCacheBlocksFresh)
          ->Add(after.fresh_blocks - cache_stats_before.fresh_blocks);
      obs.metrics->counter(metric_names::kCachePriorHits)
          ->Add(after.prior_hits - cache_stats_before.prior_hits);
      obs.metrics->counter(metric_names::kCachePriorMisses)
          ->Add(after.prior_misses - cache_stats_before.prior_misses);
      obs.metrics->gauge(metric_names::kCachePoolBlocks)
          ->Set(static_cast<double>(after.pooled_blocks));
      obs.metrics->gauge(metric_names::kCachePriorEntries)
          ->Set(static_cast<double>(after.prior_entries));
    }
  }

  if (obs.metering() && predictor != nullptr) {
    obs.metrics->gauge(metric_names::kPredictorEntries)
        ->Set(static_cast<double>(predictor->stats().chooser_entries));
  }
  if (obs.metering()) {
    obs.metrics->gauge(metric_names::kEngineSpendS)
        ->Set(result.elapsed_seconds);
    obs.metrics->gauge(metric_names::kEngineUtilization)
        ->Set(result.utilization);
    obs.metrics->gauge(metric_names::kEngineOverspendS)
        ->Set(result.overspend_seconds);
    // The shared ledger holds global charges (stage overhead, block
    // reads); the per-term ledgers hold operator work. Export both, terms
    // folded in term order (serial section — gauges stay deterministic).
    ledger.ExportTo(obs.metrics, "ledger");
    for (size_t c = 0; c < static_cast<size_t>(CostCategory::kNumCategories);
         ++c) {
      auto cat = static_cast<CostCategory>(c);
      double total = 0.0;
      double ops = 0.0;
      for (const auto& term_ledger : term_ledgers) {
        total += term_ledger->Total(cat);
        ops += static_cast<double>(term_ledger->Count(cat));
      }
      const std::string base =
          std::string("ledger.terms.") + std::string(CostCategoryName(cat));
      obs.metrics->gauge(base + "_s")->Set(total);
      obs.metrics->gauge(base + "_ops")->Set(ops);
    }
    if (pool != nullptr) {
      // Scheduling-dependent: exported as gauges, never counters, so the
      // deterministic metric sections stay bit-identical across widths.
      obs.metrics->gauge("pool.batches")
          ->Set(static_cast<double>(pool->batches_run()));
      obs.metrics->gauge("pool.tasks_by_workers")
          ->Set(static_cast<double>(pool->tasks_run_by_workers()));
      obs.metrics->gauge("pool.tasks_by_callers")
          ->Set(static_cast<double>(pool->tasks_run_by_callers()));
    }
  }
  if (obs.observer != nullptr) {
    obs.observer->OnQueryEnd(result.estimate, result.variance,
                             result.overspent);
  }
  return result;
}

std::string ExplainResult::ToString() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "time-constrained aggregate plan (strategy %s, quota %.3f s, "
                "%s layout)\n",
                strategy.c_str(), quota_s,
                std::string(LayoutName(layout)).c_str());
  out += line;
  std::snprintf(
      line, sizeof(line),
      "terms: %d sampled, %d answered from the catalog; %lld blocks total\n",
      num_sampled_terms, num_constant_terms,
      static_cast<long long>(total_blocks));
  out += line;
  if (stages.empty()) {
    out += "no sampling stage fits the quota\n";
    return out;
  }
  out += "stage  time_left_s  fraction  d_beta  predicted_s   blocks\n";
  for (const StagePrediction& s : stages) {
    std::snprintf(line, sizeof(line),
                  "%5d  %11.4f  %8.5f  %6.2f  %11.4f  %7lld\n", s.index,
                  s.time_left_before, s.planned_fraction, s.d_beta_used,
                  s.predicted_seconds, static_cast<long long>(s.blocks_planned));
    out += line;
  }
  out += exhausts_samples
             ? "plan exhausts every relation's blocks within the quota\n"
             : "plan stops when no further stage fits the remaining time\n";
  if (predictor_active) {
    out += "predictor (stage-0 peek): term node op         component  "
           "selectivity  conf  width\n";
    for (const PredictorNodeView& n : predictor_nodes) {
      std::snprintf(line, sizeof(line),
                    "predictor:                %4d %4d %-10s %-9s  %11.6f  "
                    "%4.2f  %5.2f\n",
                    n.term, n.node, n.op.c_str(), n.component.c_str(),
                    n.selectivity, n.confidence, n.width_scale);
      out += line;
    }
  }
  return out;
}

Result<ExplainResult> ExplainTimeConstrainedAggregate(
    const ExprPtr& expr, const AggregateSpec& aggregate,
    const Catalog& catalog, const ExecutorOptions& options) {
  TCQ_RETURN_NOT_OK(options.Validate());
  ExplainResult out;
  out.quota_s = options.quota_s;
  out.layout = options.layout;
  std::unique_ptr<TimeControlStrategy> strategy =
      MakeStrategy(options.strategy);
  out.strategy = std::string(strategy->name());

  TCQ_ASSIGN_OR_RETURN(Schema schema, InferSchema(expr, catalog));
  if (aggregate.kind != AggregateSpec::Kind::kCount) {
    TCQ_ASSIGN_OR_RETURN(int value_col, schema.IndexOf(aggregate.column));
    (void)value_col;
  }
  TCQ_ASSIGN_OR_RETURN(std::vector<SignedTerm> terms, ExpandCount(expr));
  // Same constant/sampled split as the run path: bare scans are answered
  // from the catalog for COUNT and never planned.
  std::vector<SignedTerm> sampled_terms;
  for (const SignedTerm& term : terms) {
    if (term.expr->kind == ExprKind::kScan &&
        aggregate.kind == AggregateSpec::Kind::kCount) {
      ++out.num_constant_terms;
    } else {
      sampled_terms.push_back(term);
    }
  }
  out.num_sampled_terms = static_cast<int>(sampled_terms.size());
  if (sampled_terms.empty()) return out;

  // Stage-0 evaluators: the planner's view before any sample is drawn.
  // The cost model plans for the serial machine exactly like a simulated
  // run; a private clockless ledger satisfies the evaluator's interface
  // (nothing ever charges it — no stage executes).
  CostModel physical = options.physical;
  physical.workers = 1;
  // Same layout-aware initial coefficients as the run path (wall-clock
  // only; simulated plans are layout-independent by construction).
  AdaptiveCostModel::Options cost_options = options.cost;
  if (options.use_wall_clock && options.layout == Layout::kColumnar) {
    cost_options.eval_speedup = physical.columnar_eval_speedup;
  }
  AdaptiveCostModel coefs(physical, cost_options);
  CostLedger scratch_ledger;
  std::vector<std::unique_ptr<StagedTermEvaluator>> evaluators;
  std::map<std::string, int64_t> total_blocks;
  for (const SignedTerm& term : sampled_terms) {
    TCQ_ASSIGN_OR_RETURN(
        auto ev, StagedTermEvaluator::Create(term.expr, catalog,
                                             options.fulfillment,
                                             &scratch_ledger, physical));
    std::vector<std::string> scans;
    CollectScans(term.expr, &scans);
    for (const std::string& name : scans) {
      if (total_blocks.count(name) == 0) {
        TCQ_ASSIGN_OR_RETURN(RelationPtr rel, catalog.Find(name));
        total_blocks[name] = rel->NumBlocks();
        out.total_blocks += rel->NumBlocks();
      }
    }
    evaluators.push_back(std::move(ev));
  }
  std::map<std::string, int64_t> remaining = total_blocks;
  // EXPLAIN prices the same expected fault overhead per fresh read as
  // the run path, so a serve-layer fit probe of a faulty configuration
  // plans honestly.
  const double explain_fault_overhead_s =
      options.faults.ExpectedOverheadSeconds(options.physical.block_read_s);

  // Hybrid-predictor peek (read-only; no counters move): what the
  // chooser would pick at stage 0. The peeked selectivities and widths
  // also drive the planning loop below, so EXPLAIN shows the stages a
  // predictor-enabled run would actually plan. With a warm cache
  // attached the session predictor and the prior cache are consulted;
  // cold, a scratch predictor yields the default component.
  const bool predictor_on =
      options.sel_predictor.enabled && !options.selectivity.freeze_initial;
  out.predictor_active = predictor_on;
  std::vector<std::map<int, double>> peeked_sel(evaluators.size());
  std::vector<std::map<int, double>> peeked_widths(evaluators.size());
  if (predictor_on) {
    SelPredictor* session_predictor =
        options.warm_cache != nullptr ? options.warm_cache->predictor()
                                      : nullptr;
    const SelPredictor scratch(options.sel_predictor);
    const SelPredictor& pred =
        session_predictor != nullptr ? *session_predictor : scratch;
    const CacheKey query_sig = CanonicalSignature(*expr);
    for (size_t t = 0; t < evaluators.size(); ++t) {
      for (const StagedNode* node : evaluators[t]->NodesPreOrder()) {
        if (node->kind == ExprKind::kScan) continue;
        CacheKey node_key = CanonicalSignature(*node->expr);
        std::optional<double> prior;
        if (options.warm_cache != nullptr) {
          std::optional<double> raw =
              options.warm_cache->PeekPrior(node_key);
          if (raw.has_value()) {
            prior = SanitizedStagePrior(*raw, node->total_points,
                                        options.selectivity.zero_hit_beta);
          }
        }
        double fallback =
            InitialSelectivity(*node, options.selectivity, nullptr);
        SelPrediction p = pred.Peek(query_sig, node_key,
                                    StructuralSignature(*node->expr),
                                    std::nullopt, prior, fallback);
        peeked_sel[t][node->id] = p.selectivity;
        peeked_widths[t][node->id] = p.width_scale;
        PredictorNodeView view;
        view.term = static_cast<int>(t);
        view.node = node->id;
        view.op = std::string(ExprKindName(node->kind));
        view.component = std::string(SelComponentName(p.component));
        view.selectivity = p.selectivity;
        view.confidence = p.confidence;
        view.width_scale = p.width_scale;
        out.predictor_nodes.push_back(std::move(view));
      }
    }
  }

  // The planning loop of the run path against hypothetical time/block
  // state: each chosen stage charges its predicted cost to the budget and
  // decrements the relations' remaining blocks. Selectivity revisions and
  // coefficient re-fits need samples, so the stage-1 priors persist (the
  // EXPLAIN vs. EXPLAIN ANALYZE gap, documented in the header).
  double time_left = options.quota_s;
  for (int stage = 0; stage < options.max_stages; ++stage) {
    if (time_left <= 0.0) break;
    double f_max = 0.0;
    double min_step = 1.0;
    for (const auto& [name, total] : total_blocks) {
      if (total <= 0) continue;
      f_max = std::max(f_max, static_cast<double>(remaining[name]) /
                                  static_cast<double>(total));
      min_step = std::min(min_step, 1.0 / static_cast<double>(total));
    }
    if (f_max <= 0.0) break;

    std::vector<std::map<int, double>> sel_prev;
    sel_prev.reserve(evaluators.size());
    for (const auto& ev : evaluators) {
      sel_prev.push_back(ReviseSelectivities(*ev, options.selectivity));
    }
    if (predictor_on) {
      for (size_t t = 0; t < evaluators.size(); ++t) {
        for (auto& [id, sel] : sel_prev[t]) {
          auto it = peeked_sel[t].find(id);
          if (it != peeked_sel[t].end()) sel = it->second;
        }
      }
    }
    auto fetch_cost = [&](double f) {
      double seconds = 0.0;
      for (const auto& [name, total] : total_blocks) {
        int64_t d_new = std::min<int64_t>(BlocksForFraction(f, total),
                                          remaining[name]);
        seconds += static_cast<double>(d_new) *
                   (coefs.Coef(kGlobalCostNode, CostStep::kFetch) +
                    explain_fault_overhead_s);
      }
      return seconds;
    };
    auto qcost = [&](double f, double d_beta) -> Result<double> {
      double seconds = coefs.Coef(kGlobalCostNode, CostStep::kSetup) +
                       fetch_cost(f);
      for (size_t t = 0; t < evaluators.size(); ++t) {
        std::map<int, double> sel_plus = ComputeSelPlus(
            *evaluators[t], sel_prev[t], f, d_beta, options.fulfillment,
            predictor_on ? &peeked_widths[t] : nullptr);
        TCQ_ASSIGN_OR_RETURN(
            TermStagePrediction p,
            PredictTermStageCost(*evaluators[t], f, sel_plus, coefs,
                                 options.fulfillment));
        seconds += p.seconds;
      }
      return seconds;
    };
    auto qcost_sigma = [&](double f) -> Result<double> {
      double sigma = 0.0;
      for (size_t t = 0; t < evaluators.size(); ++t) {
        std::map<int, NodePoints> points =
            PredictNodePoints(*evaluators[t], f, options.fulfillment);
        TCQ_ASSIGN_OR_RETURN(
            TermStagePrediction base,
            PredictTermStageCost(*evaluators[t], f, sel_prev[t], coefs,
                                 options.fulfillment));
        for (const auto& [id, sel] : sel_prev[t]) {
          auto it = points.find(id);
          if (it == points.end()) continue;
          double sd = std::sqrt(SrsProportionVariance(
              sel, it->second.remaining_points, it->second.new_points));
          if (sd <= 0.0) continue;
          std::map<int, double> bumped = sel_prev[t];
          bumped[id] = std::min(1.0, sel + sd);
          TCQ_ASSIGN_OR_RETURN(
              TermStagePrediction hi,
              PredictTermStageCost(*evaluators[t], f, bumped, coefs,
                                   options.fulfillment));
          sigma += std::max(0.0, hi.seconds - base.seconds);
        }
      }
      return sigma;
    };

    StagePlanContext context;
    context.next_stage = stage;
    context.time_left = time_left;
    context.quota = options.quota_s;
    context.f_max = f_max;
    context.f_min_step = min_step;
    context.epsilon = options.epsilon_s;
    context.predictor_active = predictor_on;
    context.obs = options.obs;
    context.qcost = qcost;
    context.qcost_sigma = qcost_sigma;
    TCQ_ASSIGN_OR_RETURN(StagePlan plan, strategy->PlanStage(context));
    if (plan.fraction <= 0.0) break;

    StagePrediction prediction;
    prediction.index = stage;
    prediction.time_left_before = time_left;
    prediction.planned_fraction = plan.fraction;
    prediction.d_beta_used = plan.d_beta_used;
    prediction.predicted_seconds = plan.predicted_seconds;
    for (const auto& [name, total] : total_blocks) {
      int64_t d_new = std::min<int64_t>(
          BlocksForFraction(plan.fraction, total), remaining[name]);
      remaining[name] -= d_new;
      prediction.blocks_planned += d_new;
    }
    out.stages.push_back(prediction);
    time_left -= plan.predicted_seconds;
    if (prediction.blocks_planned <= 0) break;  // cannot progress further
  }
  out.exhausts_samples = true;
  for (const auto& [name, left] : remaining) {
    (void)name;
    if (left > 0) out.exhausts_samples = false;
  }
  return out;
}

}  // namespace tcq
