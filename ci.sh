#!/usr/bin/env bash
# CI entry point. Runs the correctness-tooling stages in order and prints
# a summary table; the script exits non-zero iff any stage FAILs.
#
#   ./ci.sh                      # every stage
#   ./ci.sh lint release         # just those stages, in that order
#   ./ci.sh --release            # legacy spelling of "release"
#   ./ci.sh --tsan               # legacy spelling of "tsan"
#
# Stages:
#   lint          tools/tcq_lint.py over the tree + its self-test; archives
#                 per-rule hit counts at build/artifacts/lint_report.json
#   format-check  clang-format --dry-run -Werror (SKIP if tool absent)
#   tidy          clang-tidy with the checked-in .clang-tidy
#                 (SKIP if tool absent)
#   thread-safety clang -Wthread-safety -Werror=thread-safety over every
#                 src/ TU, checking the TCQ_GUARDED_BY/TCQ_REQUIRES
#                 capability annotations (SKIP if clang++ absent; GCC
#                 cannot evaluate the attributes). Reuses the tooling
#                 compile_commands.json emitted for clang-tidy.
#   release       Release build (-Wall -Wextra -Werror) + full ctest
#   trace-smoke   traced quickstart run; validates + archives the Chrome
#                 trace JSON at build/artifacts/trace_smoke.json, then
#                 gates disabled-tracing overhead via bench/trace_overhead
#   warm-bench    cold-vs-warm comparison via bench/warm_start; archives
#                 the JSON at build/artifacts/warm_start.json and gates
#                 the >=20% fresh-draw savings of the warm run
#   serve-bench   4x-overload serving run via bench/serve_load (admission
#                 on vs off); archives build/artifacts/serve_load.json,
#                 refreshes the top-level BENCH_serve.json summary, and
#                 gates the <=5% deadline-miss rate of admitted queries
#                 (and that admission OFF violates it)
#   fault-bench   the same 4x-overload harness with deterministic fault
#                 injection armed (5% transient + 1% permanent) via
#                 bench/fault_tolerance; archives build/artifacts/
#                 fault_tolerance.json, refreshes BENCH_fault.json, and
#                 gates the <=5% miss rate and >=80% exact-count CI
#                 coverage of the degraded answers
#   vec-bench     row-vs-columnar evaluation comparison via
#                 bench/vector_eval; archives build/artifacts/
#                 vector_eval.json, refreshes BENCH_vector.json, and
#                 gates the >=2x per-block Select AND Intersect speedups
#                 of the columnar kernels plus whole-query bit-identity
#                 across layouts
#   pred-bench    hybrid-selectivity-predictor comparison on a drifting
#                 join workload via bench/sel_predictor; archives
#                 build/artifacts/sel_predictor.json, refreshes
#                 BENCH_pred.json, and gates the >=10% wasted-draw savings
#                 and lower stage-cost error vs the prior-cache baseline
#   tsan          ThreadSanitizer build + ctest (contracts armed)
#   asan          AddressSanitizer build + ctest (contracts armed)
#   ubsan         UndefinedBehaviorSanitizer build + ctest (contracts armed)
#
# Every sanitizer configuration compiles with TCQ_ENABLE_DCHECKS (see
# CMakeLists.txt), so TCQ_DCHECK / TCQ_CHECK_INVARIANT contracts execute
# under the sanitizers rather than compiling away with NDEBUG.
set -euo pipefail
cd "$(dirname "$0")"

jobs="$(nproc 2>/dev/null || echo 2)"
ALL_STAGES=(lint format-check tidy thread-safety release trace-smoke warm-bench serve-bench fault-bench vec-bench pred-bench tsan asan ubsan)

usage() {
  echo "usage: $0 [stage...]   stages: ${ALL_STAGES[*]}" >&2
  exit 2
}

# --- stage implementations -------------------------------------------------
# Each stage_* function runs with `set -e` suspended by the caller and
# returns 0 (PASS), 1 (FAIL), or 77 (SKIP: required tool missing).

cxx_sources() {
  git ls-files -- '*.cc' '*.h' 2>/dev/null \
    || find src bench tests examples tools -name '*.cc' -o -name '*.h'
}

stage_lint() {
  mkdir -p build/artifacts &&
    python3 tools/tcq_lint.py --root . \
      --report-json build/artifacts/lint_report.json &&
    python3 tools/tcq_lint_test.py
}

stage_format_check() {
  command -v clang-format >/dev/null 2>&1 || return 77
  # shellcheck disable=SC2046
  clang-format --dry-run -Werror $(cxx_sources)
}

ensure_compile_db() {
  # One shared tooling build tree: its compile_commands.json (exported by
  # default, see CMakeLists.txt) serves both clang-tidy and the
  # thread-safety pass. TCQ_WERROR=OFF so tooling runs on compilers with
  # newer warning sets are not blocked by the warning-clean gate — the
  # release stage enforces that.
  cmake -B build-tooling -S . -DCMAKE_BUILD_TYPE=Release \
        -DTCQ_WERROR=OFF >/dev/null &&
    [[ -f build-tooling/compile_commands.json ]]
}

stage_tidy() {
  command -v clang-tidy >/dev/null 2>&1 || return 77
  ensure_compile_db &&
    git ls-files -- 'src/*.cc' 'bench/*.cc' 'examples/*.cc' |
      xargs -r clang-tidy -p build-tooling --quiet
}

stage_thread_safety() {
  # clang is the only compiler that evaluates the capability attributes;
  # without it the annotations are inert no-ops and there is nothing to
  # check (the unannotated-guarded-field lint rule still enforces
  # coverage under GCC).
  command -v clang++ >/dev/null 2>&1 || return 77
  ensure_compile_db &&
    python3 - <<'EOF_PY'
import json
import shlex
import subprocess
import sys

with open("build-tooling/compile_commands.json") as f:
    db = json.load(f)

failed = 0
checked = 0
for entry in sorted(db, key=lambda e: e["file"]):
    path = entry["file"]
    if "/src/" not in path or not path.endswith(".cc"):
        continue
    args = shlex.split(entry["command"])[1:]
    # Drop the object output; keep include paths, defines and -std.
    keep = []
    skip_next = False
    for a in args:
        if skip_next:
            skip_next = False
            continue
        if a == "-o":
            skip_next = True
            continue
        if a in ("-c", path):
            continue
        keep.append(a)
    cmd = (["clang++"] + keep +
           ["-fsyntax-only", "-Wno-everything", "-Wthread-safety",
            "-Werror=thread-safety", path])
    proc = subprocess.run(cmd, cwd=entry["directory"])
    checked += 1
    if proc.returncode != 0:
        failed += 1
if failed:
    print(f"thread-safety: {failed}/{checked} TU(s) failed", file=sys.stderr)
    sys.exit(1)
print(f"thread-safety: {checked} src/ TUs clean under "
      "-Werror=thread-safety")
EOF_PY
}

build_and_test() { # <build-dir> <extra cmake args...>
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@" &&
    cmake --build "$dir" -j "$jobs" &&
    (cd "$dir" && ctest --output-on-failure -j "$jobs")
}

stage_release() {
  build_and_test build -DCMAKE_BUILD_TYPE=Release
}

stage_trace_smoke() {
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release &&
    cmake --build build -j "$jobs" --target quickstart trace_overhead &&
    mkdir -p build/artifacts &&
    ./build/examples/quickstart --trace build/artifacts/trace_smoke.json \
      >/dev/null &&
    python3 - <<'EOF' &&
import json
with open("build/artifacts/trace_smoke.json") as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert events, "trace archived but traceEvents is empty"
phases = {e["ph"] for e in events}
assert "X" in phases, "no complete spans in the smoke trace"
print(f"trace-smoke: {len(events)} events archived at "
      "build/artifacts/trace_smoke.json")
EOF
    ./build/bench/trace_overhead
}

stage_warm_bench() {
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release &&
    cmake --build build -j "$jobs" --target warm_start &&
    mkdir -p build/artifacts &&
    ./build/bench/warm_start | tee build/artifacts/warm_start.json &&
    python3 - <<'EOF_PY'
import json
with open("build/artifacts/warm_start.json") as f:
    result = json.load(f)
assert result["ok"], "warm_start bench gate failed"
print(f"warm-bench: {result['fresh_savings_pct']:.1f}% fresh-draw savings "
      "archived at build/artifacts/warm_start.json")
EOF_PY
}

stage_serve_bench() {
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release &&
    cmake --build build -j "$jobs" --target serve_load &&
    mkdir -p build/artifacts &&
    ./build/bench/serve_load | tee build/artifacts/serve_load.json &&
    python3 - <<'EOF_PY'
import json
with open("build/artifacts/serve_load.json") as f:
    result = json.load(f)
assert result["ok"], "serve_load bench gate failed"
on = next(r for r in result["runs"] if r["admission"])
off = next(r for r in result["runs"] if not r["admission"])
summary = {
    "bench": "serve_load",
    "n": result["n"],
    "overload": result["overload"],
    "t_svc_s": result["t_svc_s"],
    "deadline_s": result["deadline_s"],
    "admission_on": {k: on[k] for k in
                     ("qps", "p99_latency_s", "miss_pct", "admitted",
                      "shrunk", "queued", "rejected", "completed")},
    "admission_off": {k: off[k] for k in
                      ("qps", "p99_latency_s", "miss_pct", "admitted",
                       "shrunk", "queued", "rejected", "completed")},
    "ok": result["ok"],
}
with open("BENCH_serve.json", "w") as f:
    json.dump(summary, f, indent=2)
    f.write("\n")
print(f"serve-bench: admission on {on['miss_pct']:.1f}% miss / "
      f"off {off['miss_pct']:.1f}% miss; summary at BENCH_serve.json")
EOF_PY
}

stage_fault_bench() {
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release &&
    cmake --build build -j "$jobs" --target fault_tolerance &&
    mkdir -p build/artifacts &&
    ./build/bench/fault_tolerance | tee build/artifacts/fault_tolerance.json &&
    python3 - <<'EOF_PY'
import json
with open("build/artifacts/fault_tolerance.json") as f:
    result = json.load(f)
assert result["ok"], "fault_tolerance bench gate failed"
summary = {
    "bench": "fault_tolerance",
    "n": result["n"],
    "overload": result["overload"],
    "t_svc_s": result["t_svc_s"],
    "transient_rate": result["transient_rate"],
    "permanent_rate": result["permanent_rate"],
    "miss_pct": result["miss_pct"],
    "coverage_pct": result["coverage_pct"],
    "mean_rel_err_pct": result["mean_rel_err_pct"],
    "transient_faults": result["transient_faults"],
    "retries": result["retries"],
    "blocks_lost": result["blocks_lost"],
    "degraded": result["degraded"],
    "max_widening": result["max_widening"],
    "breaker_sheds": result["breaker_sheds"],
    "ok": result["ok"],
}
with open("BENCH_fault.json", "w") as f:
    json.dump(summary, f, indent=2)
    f.write("\n")
print(f"fault-bench: {result['miss_pct']:.1f}% miss, "
      f"{result['coverage_pct']:.1f}% CI coverage under faults; "
      "summary at BENCH_fault.json")
EOF_PY
}

stage_vec_bench() {
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release &&
    cmake --build build -j "$jobs" --target vector_eval &&
    mkdir -p build/artifacts &&
    ./build/bench/vector_eval | tee build/artifacts/vector_eval.json &&
    python3 - <<'EOF_PY'
import json
with open("build/artifacts/vector_eval.json") as f:
    result = json.load(f)
assert result["ok"], "vector_eval bench gate failed"
assert result["bit_identical"], "layouts diverged"
assert result["select_speedup"] >= result["min_speedup"]
assert result["intersect_speedup"] >= result["min_speedup"]
summary = {
    "bench": "vector_eval",
    "tuples_per_block": result["tuples_per_block"],
    "select_speedup": result["select_speedup"],
    "intersect_speedup": result["intersect_speedup"],
    "min_speedup": result["min_speedup"],
    "bit_identical": result["bit_identical"],
    "ok": result["ok"],
}
with open("BENCH_vector.json", "w") as f:
    json.dump(summary, f, indent=2)
    f.write("\n")
print(f"vec-bench: select {result['select_speedup']:.2f}x, "
      f"intersect {result['intersect_speedup']:.2f}x, bit-identical; "
      "summary at BENCH_vector.json")
EOF_PY
}

stage_pred_bench() {
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release &&
    cmake --build build -j "$jobs" --target sel_predictor &&
    mkdir -p build/artifacts &&
    ./build/bench/sel_predictor | tee build/artifacts/sel_predictor.json &&
    python3 - <<'EOF_PY'
import json
with open("build/artifacts/sel_predictor.json") as f:
    result = json.load(f)
assert result["ok"], "sel_predictor bench gate failed"
assert result["wasted_savings_pct"] >= result["min_savings_pct"]
assert (result["predictor"]["stage_cost_overrun_err"]
        < result["prior_cache"]["stage_cost_overrun_err"])
summary = {
    "bench": "sel_predictor",
    "wasted_savings_pct": result["wasted_savings_pct"],
    "min_savings_pct": result["min_savings_pct"],
    "overrun_err_predictor": result["predictor"]["stage_cost_overrun_err"],
    "overrun_err_prior_cache": result["prior_cache"]["stage_cost_overrun_err"],
    "stage_cost_err_predictor": result["predictor"]["stage_cost_err"],
    "stage_cost_err_prior_cache": result["prior_cache"]["stage_cost_err"],
    "zero_estimate_runs_predictor": result["predictor"]["zero_estimate_runs"],
    "zero_estimate_runs_prior_cache": result["prior_cache"]["zero_estimate_runs"],
    "ok": result["ok"],
}
with open("BENCH_pred.json", "w") as f:
    json.dump(summary, f, indent=2)
    f.write("\n")
print(f"pred-bench: {result['wasted_savings_pct']:.1f}% wasted-draw savings, "
      f"stage-cost overrun error "
      f"{result['predictor']['stage_cost_overrun_err']:.3f} vs "
      f"{result['prior_cache']['stage_cost_overrun_err']:.3f}; "
      "summary at BENCH_pred.json")
EOF_PY
}

stage_tsan() {
  # TSan aborts the process on the first race (halt_on_error), so a green
  # ctest run doubles as a no-race assertion.
  TSAN_OPTIONS="halt_on_error=1" \
    build_and_test build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DTCQ_SANITIZE=thread
}

stage_asan() {
  build_and_test build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DTCQ_SANITIZE=address
}

stage_ubsan() {
  # -fno-sanitize-recover=undefined (set in CMakeLists.txt) turns any UB
  # report into a hard failure.
  build_and_test build-ubsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DTCQ_SANITIZE=undefined
}

# --- stage selection -------------------------------------------------------

stages=()
for arg in "$@"; do
  case "$arg" in
    --release) stages+=(release) ;;
    --tsan) stages+=(tsan) ;;
    -h | --help) usage ;;
    *)
      ok=0
      for s in "${ALL_STAGES[@]}"; do
        [[ "$arg" == "$s" ]] && ok=1
      done
      [[ "$ok" == 1 ]] || { echo "ci.sh: unknown stage '$arg'" >&2; usage; }
      stages+=("$arg")
      ;;
  esac
done
[[ ${#stages[@]} -gt 0 ]] || stages=("${ALL_STAGES[@]}")

# --- runner ----------------------------------------------------------------

declare -A result
failed=0
for stage in "${stages[@]}"; do
  echo
  echo "=== stage: $stage ==="
  fn="stage_${stage//-/_}"
  rc=0
  "$fn" || rc=$?
  case "$rc" in
    0) result[$stage]=PASS ;;
    77)
      result[$stage]=SKIP
      echo "ci.sh: $stage skipped (required tool not installed)"
      ;;
    *)
      result[$stage]=FAIL
      failed=1
      ;;
  esac
done

echo
echo "=== ci.sh summary ==="
for stage in "${stages[@]}"; do
  printf '  %-14s %s\n' "$stage" "${result[$stage]}"
done

if [[ "$failed" != 0 ]]; then
  echo "ci.sh: FAILED"
  exit 1
fi
echo "ci.sh: all requested stages passed or were skipped"
