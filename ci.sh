#!/usr/bin/env bash
# CI entry point: build and test the Release configuration, then rebuild
# the whole tree under ThreadSanitizer and re-run the suite so data races
# in the parallel stage loop are caught, not just logic bugs.
#
#   ./ci.sh              # Release + TSan
#   ./ci.sh --release    # Release only
#   ./ci.sh --tsan       # TSan only
set -euo pipefail
cd "$(dirname "$0")"

run_release=1
run_tsan=1
case "${1:-}" in
  --release) run_tsan=0 ;;
  --tsan) run_release=0 ;;
  "") ;;
  *) echo "usage: $0 [--release|--tsan]" >&2; exit 2 ;;
esac

jobs="$(nproc 2>/dev/null || echo 2)"

if [[ "$run_release" == 1 ]]; then
  echo "=== Release build ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "$jobs"
  (cd build && ctest --output-on-failure -j "$jobs")
fi

if [[ "$run_tsan" == 1 ]]; then
  echo "=== ThreadSanitizer build ==="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DTCQ_SANITIZE=thread
  cmake --build build-tsan -j "$jobs"
  # TSan aborts the process on the first race (halt_on_error), so a green
  # ctest run doubles as a no-race assertion.
  (cd build-tsan && TSAN_OPTIONS="halt_on_error=1" \
       ctest --output-on-failure -j "$jobs")
fi

echo "ci.sh: all requested configurations passed"
