// tcqf_convert — rewrites a TCQF relation file at another format version.
//
//   tcqf_convert <in.tcq> <out.tcq> [--version N]
//
// Versions: 1 = row pages, no checksums; 2 = row pages + per-page FNV-1a
// checksums; 3 (default) = columnar pages + checksums. Any readable input
// version converts to any target; a checksummed input that fails
// verification aborts with the loader's data-loss error — the converter
// never rewrites corrupt pages.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "storage/page_codec.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <in.tcq> <out.tcq> [--version N]\n"
               "  N: 1 (rows, no checksums), 2 (rows + checksums),\n"
               "     3 (columnar + checksums; default)\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string in_path, out_path;
  long version = 3;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--version") == 0) {
      if (i + 1 >= argc) return Usage(argv[0]);
      char* end = nullptr;
      version = std::strtol(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0') return Usage(argv[0]);
    } else if (positional == 0) {
      in_path = argv[i];
      ++positional;
    } else if (positional == 1) {
      out_path = argv[i];
      ++positional;
    } else {
      return Usage(argv[0]);
    }
  }
  if (positional != 2) return Usage(argv[0]);
  if (version < 1 || version > 3) {
    std::fprintf(stderr, "tcqf_convert: unsupported version %ld\n", version);
    return 2;
  }

  tcq::Status status = tcq::ConvertRelationFile(
      in_path, out_path, static_cast<uint32_t>(version));
  if (!status.ok()) {
    std::fprintf(stderr, "tcqf_convert: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s at TCQF v%ld\n", out_path.c_str(), version);
  return 0;
}
