#!/usr/bin/env python3
"""tcq_lint: project-specific invariant lint for the TCQ codebase.

The estimator's statistical guarantees (unbiasedness, the adaptive cost
model's overspend-risk bound, bit-identical parallel reduction) rest on
low-level source invariants that generic tools cannot see. This pass
enforces them statically:

  unseeded-rng       All randomness flows through tcq::Rng (src/util/random.*).
                     std::mt19937 / std::random_device / rand() / srand()
                     anywhere else silently breaks seed-reproducibility of
                     every experiment.
  wall-clock         Time is budgeted, not observed: only src/timectrl/ and
                     the simulation clock may talk to a clock at all, and
                     nothing outside src/timectrl/ may read *wall-clock*
                     (non-monotonic) time. std::chrono::system_clock,
                     time(), gettimeofday(), clock() elsewhere make the
                     hard-deadline accounting unfalsifiable.
  stdout-in-lib      Library code under src/ must not write to stdout
                     (std::cout, printf, puts). Reporting belongs to
                     examples/, bench/, and callers; stray prints corrupt
                     the JSON emitted by the bench harness.
  nodiscard-status   Every function declared in a src/ header that returns
                     tcq::Status or tcq::Result<T> must carry
                     [[nodiscard]]. The library has no exceptions; a
                     dropped Status is a swallowed error.
  thread-outside-parallel
                     std::thread / std::jthread / std::async / .detach()
                     outside src/parallel/. All concurrency goes through
                     ThreadPool so the fixed-order reduction contract (and
                     the TSan story) covers it. Reading thread *identity*
                     (std::thread::id, std::this_thread) is fine — it does
                     not create concurrency.
  cache-key-canonical
                     Direct CacheKey construction in library code outside
                     src/cache/. Warm-start cache keys must come from
                     CanonicalSignature(expr) so semantically equal
                     queries (commutted intersections, reordered project
                     columns) share pool/prior entries; a hand-built key
                     silently splits the cache.
  trace-format-outside-obs
                     Trace-output formatting (ExportChromeJson,
                     AppendTraceEventJson, a "traceEvents" literal) in
                     library code outside src/obs/. The Chrome trace_event
                     schema lives in exactly one place so the golden-schema
                     test covers every byte any query can emit; other
                     layers record through the Tracer API and export via
                     Tracer::ExportToFile.
  raw-options-edit   The deprecated QueryBuilder::With(edit) escape hatch
                     outside tests/. Every ExecutorOptions field has a
                     typed With* setter; raw edits are ungreppable and let
                     a query drift from what EXPLAIN and the tcq::Server
                     admission fit probe planned against. Tests may use
                     the hatch deliberately (e.g. to prove the typed
                     setters configure the very same options).
  status-discarded-in-storage
                     A storage I/O call (SaveRelation, LoadCatalog,
                     EncodePage, ...) used as a bare statement — or behind
                     a (void) cast — inside src/storage/. Every entry
                     point there returns Status/Result precisely because
                     disk corruption (checksum mismatch -> DataLoss) and
                     injected faults surface through those values; a
                     dropped return turns a detectable corrupt page into
                     silent wrong data. Wrap in TCQ_RETURN_NOT_OK /
                     TCQ_ASSIGN_OR_RETURN or branch on .ok().

Usage:
  tools/tcq_lint.py [--root DIR] [--list-rules] [PATHS...]

With no PATHS, scans src/ bench/ examples/ tests/ under --root (default:
repository root, i.e. the parent of this script's directory).

Suppressions (use sparingly, justify in a comment):
  // tcq-lint: allow(rule-name)         -- suppress on this line
  // tcq-lint: disable-file(rule-name)  -- suppress in the whole file

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

CXX_EXTENSIONS = (".cc", ".cpp", ".cxx", ".h", ".hpp")
DEFAULT_SCAN_DIRS = ("src", "bench", "examples", "tests")

ALLOW_RE = re.compile(r"//\s*tcq-lint:\s*allow\(([\w-]+(?:\s*,\s*[\w-]+)*)\)")
DISABLE_FILE_RE = re.compile(
    r"//\s*tcq-lint:\s*disable-file\(([\w-]+(?:\s*,\s*[\w-]+)*)\)")


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _strip_comments_and_strings(line: str) -> str:
    """Blanks out string/char literals and // comments so token rules do
    not fire on prose. Crude (no multi-line /* */ tracking) but the
    codebase uses // comments throughout."""
    out = []
    i, n = 0, len(line)
    in_str = None  # quote char when inside a literal
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                out.append("  ")
                continue
            if c == in_str:
                in_str = None
            out.append(" ")
            i += 1
            continue
        if c in ('"', "'"):
            in_str = c
            out.append(" ")
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break  # rest of line is a comment
        out.append(c)
        i += 1
    return "".join(out)


def _norm(path: str) -> str:
    return path.replace(os.sep, "/")


# ---------------------------------------------------------------------------
# Rule implementations. Each takes (relpath, lines, code_lines) where
# code_lines has comments/strings blanked, and yields (line_no, message).
# ---------------------------------------------------------------------------

RNG_TOKENS = re.compile(
    r"std::mt19937|std::minstd_rand|std::default_random_engine"
    r"|std::random_device|\bsrand\s*\(|(?<![\w:.>])rand\s*\(")


def rule_unseeded_rng(relpath, lines, code_lines):
    if _norm(relpath).startswith("src/util/random"):
        return
    for no, code in enumerate(code_lines, 1):
        m = RNG_TOKENS.search(code)
        if m:
            yield no, (f"'{m.group(0).strip()}' — all randomness must flow "
                       "through tcq::Rng (src/util/random.h) so runs are "
                       "reproducible from a single seed")


WALL_CLOCK_TOKENS = re.compile(
    r"std::chrono::system_clock|\bgettimeofday\s*\(|\blocaltime\s*\("
    r"|\bgmtime\s*\(|(?<![\w:.>])time\s*\(|(?<![\w:.>])clock\s*\(")


def rule_wall_clock(relpath, lines, code_lines):
    p = _norm(relpath)
    if not p.startswith("src/") or p.startswith("src/timectrl/"):
        return
    for no, code in enumerate(code_lines, 1):
        m = WALL_CLOCK_TOKENS.search(code)
        if m:
            yield no, (f"'{m.group(0).strip()}' — wall-clock reads outside "
                       "src/timectrl/ break the hard-deadline accounting; "
                       "use the ledger/VirtualClock or a monotonic clock "
                       "owned by timectrl")


STDOUT_TOKENS = re.compile(
    r"std::cout|(?<![\w:])\bprintf\s*\(|(?<![\w:])\bputs\s*\(|\bfprintf\s*\(\s*stdout")


def rule_stdout_in_lib(relpath, lines, code_lines):
    if not _norm(relpath).startswith("src/"):
        return
    for no, code in enumerate(code_lines, 1):
        m = STDOUT_TOKENS.search(code)
        if m:
            yield no, (f"'{m.group(0).strip()}' — library code must not "
                       "write to stdout; return strings/Status and let "
                       "examples/bench do the printing")


# std::thread::id is an identity read, not thread creation, and is the
# sanctioned way for per-thread data structures (e.g. the tracer's
# lock-free buffers) to key on the current thread.
THREAD_TOKENS = re.compile(
    r"std::thread\b(?!::id)|std::jthread\b|std::async\b|\.detach\s*\(")


def rule_thread_outside_parallel(relpath, lines, code_lines):
    p = _norm(relpath)
    if p.startswith("src/parallel/"):
        return
    for no, code in enumerate(code_lines, 1):
        m = THREAD_TOKENS.search(code)
        if m:
            yield no, (f"'{m.group(0).strip()}' — raw threads outside "
                       "src/parallel/ escape the ThreadPool's fixed-order "
                       "reduction and shutdown contracts; use "
                       "tcq::ThreadPool / RunTasks")


# Constructor-style uses only: `CacheKey(...)` / `CacheKey{...}`.
# Declarations that merely hold a returned key (`CacheKey k = ...;`) and
# the factory's own signature (`CacheKey CanonicalSignature(...)`) have an
# identifier between the type name and the parenthesis and do not match.
CACHE_KEY_TOKENS = re.compile(r"\bCacheKey\s*[({]")


def rule_cache_key_canonical(relpath, lines, code_lines):
    p = _norm(relpath)
    if not p.startswith("src/") or p.startswith("src/cache/"):
        return
    for no, code in enumerate(code_lines, 1):
        m = CACHE_KEY_TOKENS.search(code)
        if m:
            yield no, (f"'{m.group(0).strip()}' — warm-start cache keys are "
                       "built only by CanonicalSignature(expr) in "
                       "src/cache/signature.*; a hand-constructed key skips "
                       "canonicalization and splits the cache for "
                       "semantically equal queries")


TRACE_FORMAT_TOKENS = re.compile(
    r"\bExportChromeJson\b|\bAppendTraceEventJson\b")
# The schema key appears inside a string literal, which code_lines blanks
# out, so the raw line is checked. The leading (possibly escaped) quote
# keeps prose mentions of traceEvents from firing.
TRACE_FORMAT_LITERAL = re.compile(r'\\?"traceEvents')


def rule_trace_format_outside_obs(relpath, lines, code_lines):
    p = _norm(relpath)
    if not p.startswith("src/") or p.startswith("src/obs/"):
        return
    for no, (line, code) in enumerate(zip(lines, code_lines), 1):
        m = TRACE_FORMAT_TOKENS.search(code) or TRACE_FORMAT_LITERAL.search(
            line)
        if m:
            yield no, (f"'{m.group(0)}' — trace JSON is formatted only in "
                       "src/obs/ so the golden-schema test covers every "
                       "byte a query can emit; record through the Tracer "
                       "API and export with Tracer::ExportToFile")


# A declaration line returning Status or Result<...>. Anchored at the start
# of the declaration so fields (`Status parse_status_;`) and callable-type
# aliases (`std::function<Result<double>(double)>`) do not match.
NODISCARD_DECL_RE = re.compile(
    r"^\s*(?:(?:static|virtual|friend|inline|constexpr|explicit)\s+)*"
    r"(Status|Result<[^;={}]*>)\s+([A-Za-z_]\w*)\s*\(")


def rule_nodiscard_status(relpath, lines, code_lines):
    p = _norm(relpath)
    if not p.startswith("src/") or not p.endswith((".h", ".hpp")):
        return
    for no, code in enumerate(code_lines, 1):
        m = NODISCARD_DECL_RE.match(code)
        if not m:
            continue
        # Skip local variable declarations that merely look like calls:
        # constructor-style init `Status s(expr);` has no parameter list with
        # types; a heuristic is not worth it — headers in this codebase only
        # contain declarations at class/namespace scope. Accept annotation on
        # the same line or the immediately preceding non-blank line.
        head = code[:m.start(1)]
        if "[[nodiscard]]" in head:
            continue
        prev = ""
        for back in range(no - 2, max(-1, no - 4), -1):
            stripped = lines[back].strip() if back >= 0 else ""
            if stripped:
                prev = stripped
                break
        if "[[nodiscard]]" in prev:
            continue
        yield no, (f"'{m.group(2)}' returns {m.group(1).split('<')[0]} but is "
                   "not [[nodiscard]]; a dropped Status is a swallowed error "
                   "in an exception-free library")


# Member-call spelling only: `builder.With(...)` / chained `.With (...)`.
# Typed setters (`.WithQuota(`) have letters between "With" and the
# parenthesis and do not match; the declaration in api/tcq.h has no
# preceding dot.
RAW_OPTIONS_EDIT_TOKENS = re.compile(r"\.\s*With\s*\(")


def rule_raw_options_edit(relpath, lines, code_lines):
    if _norm(relpath).startswith("tests/"):
        return
    for no, code in enumerate(code_lines, 1):
        m = RAW_OPTIONS_EDIT_TOKENS.search(code)
        if m:
            yield no, ("'.With(' — the deprecated raw-ExecutorOptions "
                       "escape hatch; use the typed With* setters so the "
                       "configuration stays greppable and in sync with "
                       "EXPLAIN and admission control (tests excepted)")


# The Status/Result-returning storage entry points (page_codec.h,
# relation.h). All carry [[nodiscard]], but a `(void)` cast compiles
# cleanly and a missed wrapper macro is easy to write; with per-page
# checksums these returns are the *only* channel a corrupt/injected-fault
# page reports through, so discarding one in storage code converts a
# detectable DataLoss into silent wrong data.
STORAGE_STATUS_CALLS = (
    "SaveRelation", "SaveCatalog", "LoadRelation", "LoadCatalog",
    "EncodeTuple", "DecodeTuple", "EncodePage", "DecodePage",
    "ReadBlock", "Append", "Register", "ValidateTuple",
)
# A call that *starts* a statement: optional `(void)` cast, optional
# receiver (`rel.` / `catalog->` / `tcq::`), then the name and its
# opening parenthesis. Uses as a subexpression (`return Save...`,
# `Status s = Save...`, `if (!Save...`) have other tokens before the
# name and never match.
STORAGE_CALL_RE = re.compile(
    r"^\s*(?:\(\s*void\s*\)\s*)?(?:[A-Za-z_]\w*\s*(?:\.|->)\s*|tcq::)?"
    r"(" + "|".join(STORAGE_STATUS_CALLS) + r")\s*\(")


def rule_status_discarded_in_storage(relpath, lines, code_lines):
    if not _norm(relpath).startswith("src/storage/"):
        return
    for no, code in enumerate(code_lines, 1):
        m = STORAGE_CALL_RE.match(code)
        if not m:
            continue
        # Walk the call's parentheses (the statement may span lines). The
        # first non-space character after the matching close decides:
        # `;` means the return value was discarded; an extra `)` (depth
        # going negative) means this line only continues a wrapper such
        # as TCQ_RETURN_NOT_OK( opened on a previous line; anything else
        # (`.ok()`, `,`) is a real use.
        depth = 0
        tail = code[m.end() - 1:]  # from the call's opening paren
        verdict = None
        row = no - 1
        while verdict is None and row < len(code_lines) and row < no + 9:
            for ch in tail:
                if ch == "(":
                    depth += 1
                elif ch == ")":
                    depth -= 1
                    if depth < 0:
                        verdict = "wrapped"
                        break
                elif depth == 0 and not ch.isspace():
                    verdict = "discarded" if ch == ";" else "used"
                    break
            row += 1
            tail = code_lines[row] if row < len(code_lines) else ""
        if verdict == "discarded":
            yield no, (f"'{m.group(1)}' returns Status/Result but the call "
                       "is a bare statement; in src/storage/ that return "
                       "is the only channel a corrupt page (checksum "
                       "DataLoss) or injected fault reports through — wrap "
                       "in TCQ_RETURN_NOT_OK / TCQ_ASSIGN_OR_RETURN or "
                       "branch on .ok()")


RULES = {
    "unseeded-rng": rule_unseeded_rng,
    "wall-clock": rule_wall_clock,
    "stdout-in-lib": rule_stdout_in_lib,
    "nodiscard-status": rule_nodiscard_status,
    "thread-outside-parallel": rule_thread_outside_parallel,
    "cache-key-canonical": rule_cache_key_canonical,
    "trace-format-outside-obs": rule_trace_format_outside_obs,
    "raw-options-edit": rule_raw_options_edit,
    "status-discarded-in-storage": rule_status_discarded_in_storage,
}


def lint_file(root: str, relpath: str) -> list[Finding]:
    try:
        with open(os.path.join(root, relpath), encoding="utf-8",
                  errors="replace") as f:
            text = f.read()
    except OSError as e:
        return [Finding(relpath, 0, "io-error", str(e))]

    lines = text.splitlines()
    code_lines = [_strip_comments_and_strings(l) for l in lines]

    disabled = set()
    for line in lines[:20]:
        m = DISABLE_FILE_RE.search(line)
        if m:
            disabled.update(r.strip() for r in m.group(1).split(","))

    line_allows: dict[int, set] = {}
    for no, line in enumerate(lines, 1):
        m = ALLOW_RE.search(line)
        if m:
            line_allows[no] = {r.strip() for r in m.group(1).split(",")}

    findings = []
    for name, rule in RULES.items():
        if name in disabled:
            continue
        for no, message in rule(relpath, lines, code_lines):
            if name in line_allows.get(no, ()):
                continue
            findings.append(Finding(relpath, no, name, message))
    return findings


def collect_files(root: str, paths: list[str]) -> list[str]:
    rels = []
    if not paths:
        paths = [d for d in DEFAULT_SCAN_DIRS
                 if os.path.isdir(os.path.join(root, d))]
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(full):
            rels.append(os.path.relpath(full, root))
            continue
        for dirpath, dirnames, filenames in os.walk(full):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in ("build", ".git")
                                 and not d.startswith("build-"))
            for fn in sorted(filenames):
                if fn.endswith(CXX_EXTENSIONS):
                    rels.append(
                        os.path.relpath(os.path.join(dirpath, fn), root))
    return rels


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0],
                                 prog="tcq_lint.py")
    ap.add_argument("paths", nargs="*",
                    help="files or directories (default: src bench examples "
                         "tests under --root)")
    ap.add_argument("--root", default=None,
                    help="repository root (default: parent of tools/)")
    ap.add_argument("--list-rules", action="store_true",
                    help="print rule names and exit")
    args = ap.parse_args(argv)

    if args.list_rules:
        for name in RULES:
            print(name)
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    files = collect_files(root, args.paths)
    if not files:
        print("tcq_lint: no input files", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for rel in files:
        findings.extend(lint_file(root, rel))

    for f in findings:
        print(f)
    if findings:
        by_rule: dict[str, int] = {}
        for f in findings:
            by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
        summary = ", ".join(f"{k}: {v}" for k, v in sorted(by_rule.items()))
        print(f"tcq_lint: {len(findings)} finding(s) in {len(files)} files "
              f"({summary})", file=sys.stderr)
        return 1
    print(f"tcq_lint: OK ({len(files)} files, {len(RULES)} rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
