#!/usr/bin/env python3
"""tcq_lint: project-specific invariant lint for the TCQ codebase.

The estimator's statistical guarantees (unbiasedness, the adaptive cost
model's overspend-risk bound, bit-identical parallel reduction) rest on
low-level source invariants that generic tools cannot see. This pass
enforces them statically:

  unseeded-rng       All randomness flows through tcq::Rng (src/util/random.*).
                     std::mt19937 / std::random_device / rand() / srand()
                     anywhere else silently breaks seed-reproducibility of
                     every experiment.
  wall-clock         Time is budgeted, not observed: only src/timectrl/ and
                     the simulation clock may talk to a clock at all, and
                     nothing outside src/timectrl/ may read *wall-clock*
                     (non-monotonic) time. std::chrono::system_clock,
                     time(), gettimeofday(), clock() elsewhere make the
                     hard-deadline accounting unfalsifiable.
  stdout-in-lib      Library code under src/ must not write to stdout
                     (std::cout, printf, puts). Reporting belongs to
                     examples/, bench/, and callers; stray prints corrupt
                     the JSON emitted by the bench harness.
  nodiscard-status   Every function declared in a src/ header that returns
                     tcq::Status or tcq::Result<T> must carry
                     [[nodiscard]]. The library has no exceptions; a
                     dropped Status is a swallowed error.
  thread-outside-parallel
                     std::thread / std::jthread / std::async / .detach()
                     outside src/parallel/. All concurrency goes through
                     ThreadPool so the fixed-order reduction contract (and
                     the TSan story) covers it. Reading thread *identity*
                     (std::thread::id, std::this_thread) is fine — it does
                     not create concurrency.
  cache-key-canonical
                     Direct CacheKey construction in library code outside
                     src/cache/. Warm-start cache keys must come from
                     CanonicalSignature(expr) so semantically equal
                     queries (commutted intersections, reordered project
                     columns) share pool/prior entries; a hand-built key
                     silently splits the cache.
  trace-format-outside-obs
                     Trace-output formatting (ExportChromeJson,
                     AppendTraceEventJson, a "traceEvents" literal) in
                     library code outside src/obs/. The Chrome trace_event
                     schema lives in exactly one place so the golden-schema
                     test covers every byte any query can emit; other
                     layers record through the Tracer API and export via
                     Tracer::ExportToFile.
  raw-options-edit   The deprecated QueryBuilder::With(edit) escape hatch
                     outside tests/. Every ExecutorOptions field has a
                     typed With* setter; raw edits are ungreppable and let
                     a query drift from what EXPLAIN and the tcq::Server
                     admission fit probe planned against. Tests may use
                     the hatch deliberately (e.g. to prove the typed
                     setters configure the very same options).
  raw-tuple-scan     Tuple-at-a-time block access in src/exec/: reaching
                     into a Block's `tuples` member (`b->tuples`) or
                     calling the deprecated per-tuple `block(i)` accessor.
                     Operators consume blocks through BlockView
                     (`ViewBlock()/ReadBlock()`), whose rows()/columns()
                     keep the row and columnar layouts interchangeable —
                     a raw scan silently pins code to the row layout and
                     escapes the vectorized path's bit-identity tests.
  status-discarded-in-storage
                     A storage I/O call (SaveRelation, LoadCatalog,
                     EncodePage, ...) used as a bare statement — or behind
                     a (void) cast — inside src/storage/. Every entry
                     point there returns Status/Result precisely because
                     disk corruption (checksum mismatch -> DataLoss) and
                     injected faults surface through those values; a
                     dropped return turns a detectable corrupt page into
                     silent wrong data. Wrap in TCQ_RETURN_NOT_OK /
                     TCQ_ASSIGN_OR_RETURN or branch on .ok().
  unannotated-guarded-field
                     A class under src/ (src/util/ excepted — the wrapper
                     types live there) that declares a tcq::Mutex /
                     tcq::SharedMutex field but puts TCQ_GUARDED_BY on
                     nothing, or that declares a raw std::mutex /
                     std::shared_mutex field at all. GCC has no
                     -Wthread-safety; this rule is what keeps capability
                     annotation coverage from regressing when the tree is
                     developed without clang.
  ledger-category-charged
                     A CostLedger Charge()/ChargeN() call site under src/
                     (src/sim/ excepted — the ledger's own internals)
                     whose category argument is not a declared
                     CostCategory::k... enumerator from the single
                     registry enum in src/sim/ledger.h. Cost accounting
                     (and simulated time itself) partitions by category;
                     a charge routed through an unvetted expression is
                     unauditable.
  metric-name-registry
                     A string literal passed to Metrics::counter() /
                     gauge() / histogram() that does not appear in
                     src/obs/metric_names.h. The registry is what
                     dashboards are built against; an unregistered name
                     drifts silently. Dynamically composed names (a
                     non-literal first argument) are exempt.
  stale-allow        A `// tcq-lint: allow(rule)` suppression that
                     suppresses nothing — the finding it silenced is gone,
                     or the rule name does not exist. Stale allows
                     accumulate silently and hide future regressions on
                     the same line. Not itself suppressible.

The engine tokenizes each file once (comments and string literals are
tracked across lines, unlike a per-line regex pass) and builds per-root
cross-file state first — the CostCategory enumerators from
src/sim/ledger.h and the metric-name registry from
src/obs/metric_names.h — before any call-site rule runs.

Usage:
  tools/tcq_lint.py [--root DIR] [--list-rules] [--report-json PATH]
                    [PATHS...]

With no PATHS, scans src/ bench/ examples/ tests/ under --root (default:
repository root, i.e. the parent of this script's directory).

Suppressions (use sparingly, justify in a comment):
  // tcq-lint: allow(rule-name)         -- suppress on this line
  // tcq-lint: disable-file(rule-name)  -- suppress in the whole file

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

CXX_EXTENSIONS = (".cc", ".cpp", ".cxx", ".h", ".hpp")
DEFAULT_SCAN_DIRS = ("src", "bench", "examples", "tests")

LEDGER_REGISTRY_HEADER = "src/sim/ledger.h"
METRIC_REGISTRY_HEADER = "src/obs/metric_names.h"

ALLOW_RE = re.compile(r"//\s*tcq-lint:\s*allow\(([\w-]+(?:\s*,\s*[\w-]+)*)\)")
DISABLE_FILE_RE = re.compile(
    r"//\s*tcq-lint:\s*disable-file\(([\w-]+(?:\s*,\s*[\w-]+)*)\)")


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# Tokenizer. One pass over the file text producing
#   lines       raw source lines,
#   code_lines  lines with comments and string/char literals blanked
#               (layout preserved, so column-sensitive regexes still work),
#   tokens      a flat (line, kind, text) stream, kind in
#               {"id", "num", "str", "punct"}; "str" tokens carry the
#               literal's inner text.
# Unlike the old per-line stripper this tracks /* */ comments and string
# literals across line boundaries, so a rule can never fire on prose.
# ---------------------------------------------------------------------------

@dataclass
class Token:
    line: int
    kind: str
    text: str


_MULTI_PUNCT = ("::", "->", "++", "--", "<<=", ">>=", "<<", ">>", "<=", ">=",
                "==", "!=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
                "&&", "||")


def tokenize(text: str) -> tuple[list[str], list[str], list[Token]]:
    lines = text.splitlines()
    n_lines = len(lines)
    code_rows = [list(l) for l in lines]
    tokens: list[Token] = []

    def blank(row: int, col: int) -> None:
        if row < n_lines and col < len(code_rows[row]):
            code_rows[row][col] = " "

    row, col = 0, 0

    def cur() -> str:
        return lines[row][col] if row < n_lines and col < len(lines[row]) \
            else ""

    def peek(k: int = 1) -> str:
        if row >= n_lines:
            return ""
        line = lines[row]
        return line[col + k] if col + k < len(line) else ""

    def advance() -> None:
        nonlocal row, col
        col += 1
        while row < n_lines and col >= len(lines[row]):
            row += 1
            col = 0

    while row < n_lines:
        c = cur()
        if c == "":
            advance()
            continue
        if c == "/" and peek() == "/":  # line comment
            line = lines[row]
            for k in range(col, len(line)):
                blank(row, k)
            row += 1
            col = 0
            continue
        if c == "/" and peek() == "*":  # block comment, possibly multi-line
            blank(row, col)
            advance()
            blank(row, col)
            advance()
            while row < n_lines and not (cur() == "*" and peek() == "/"):
                blank(row, col)
                advance()
            if row < n_lines:
                blank(row, col)
                advance()
                blank(row, col)
                advance()
            continue
        if c == '"' or c == "'":
            # String/char literal (handles escapes; raw strings R"(...)"
            # via the delimiter form). The whole literal is blanked from
            # code_lines; its inner text becomes one "str" token.
            quote = c
            start_line = row + 1
            is_raw = (quote == '"' and col > 0 and lines[row][col - 1] == "R"
                      and (col < 2 or not (lines[row][col - 2].isalnum()
                                           or lines[row][col - 2] == "_")))
            blank(row, col)
            advance()
            content: list[str] = []
            if is_raw:
                delim = []
                while row < n_lines and cur() not in ("(", ""):
                    delim.append(cur())
                    blank(row, col)
                    advance()
                blank(row, col)
                advance()  # consume '('
                closer = ")" + "".join(delim) + '"'
                window = ""
                while row < n_lines:
                    window = (window + cur())[-len(closer):]
                    blank(row, col)
                    ch = cur()
                    advance()
                    if window == closer:
                        content = content[:-(len(closer) - 1)] or []
                        break
                    content.append(ch)
            else:
                while row < n_lines and cur() != quote:
                    if cur() == "\\":
                        content.append(cur())
                        blank(row, col)
                        advance()
                    if cur() == "":
                        break
                    content.append(cur())
                    blank(row, col)
                    advance()
                if row < n_lines:
                    blank(row, col)
                    advance()  # closing quote
            if quote == '"':
                tokens.append(Token(start_line, "str", "".join(content)))
            continue
        if c.isalpha() or c == "_":
            start_line = row + 1
            ident = []
            while cur() and (cur().isalnum() or cur() == "_"):
                ident.append(cur())
                advance()
            tokens.append(Token(start_line, "id", "".join(ident)))
            continue
        if c.isdigit():
            start_line = row + 1
            num = []
            while cur() and (cur().isalnum() or cur() in "._'"):
                # Digit separators and suffixes lumped together; rules
                # never inspect numeric internals.
                if cur() == "'" and not peek().isdigit():
                    break
                num.append(cur())
                advance()
            tokens.append(Token(start_line, "num", "".join(num)))
            continue
        if c.isspace():
            advance()
            continue
        matched = None
        for p in _MULTI_PUNCT:
            if c == p[0]:
                rest = all(peek(k) == p[k] for k in range(1, len(p)))
                if rest:
                    matched = p
                    break
        start_line = row + 1
        if matched:
            for _ in matched:
                advance()
            tokens.append(Token(start_line, "punct", matched))
        else:
            advance()
            tokens.append(Token(start_line, "punct", c))

    code_lines = ["".join(r) for r in code_rows]
    return lines, code_lines, tokens


def _norm(path: str) -> str:
    return path.replace(os.sep, "/")


# ---------------------------------------------------------------------------
# Cross-file state, built once per root and shared by every lint_file call
# against that root: the declared CostCategory enumerators and the metric
# name registry. Token streams are cached so linting a registry header
# itself does not re-tokenize it.
# ---------------------------------------------------------------------------

@dataclass
class LintContext:
    root: str
    ledger_categories: set[str] = field(default_factory=set)
    has_ledger_registry: bool = False
    metric_names: set[str] = field(default_factory=set)
    has_metric_registry: bool = False


_CONTEXTS: dict[str, LintContext] = {}


def _read(root: str, relpath: str) -> str | None:
    try:
        with open(os.path.join(root, relpath), encoding="utf-8",
                  errors="replace") as f:
            return f.read()
    except OSError:
        return None


def _parse_ledger_categories(tokens: list[Token]) -> set[str]:
    """Enumerators of `enum class CostCategory { ... }`, sentinel
    excluded."""
    cats: set[str] = set()
    for i, t in enumerate(tokens):
        if t.kind != "id" or t.text != "CostCategory":
            continue
        if not (i >= 2 and tokens[i - 1].text == "class"
                and tokens[i - 2].text == "enum"):
            continue
        j = i + 1
        while j < len(tokens) and tokens[j].text != "{":
            j += 1
        depth = 0
        for k in range(j, len(tokens)):
            tk = tokens[k]
            if tk.text == "{":
                depth += 1
            elif tk.text == "}":
                depth -= 1
                if depth == 0:
                    break
            elif (tk.kind == "id" and depth == 1
                  and tk.text.startswith("k")
                  and tokens[k - 1].text in ("{", ",")):
                cats.add(tk.text)
        break
    cats.discard("kNumCategories")
    return cats


def context_for_root(root: str) -> LintContext:
    root = os.path.abspath(root)
    ctx = _CONTEXTS.get(root)
    if ctx is not None:
        return ctx
    ctx = LintContext(root=root)
    text = _read(root, LEDGER_REGISTRY_HEADER)
    if text is not None:
        ctx.has_ledger_registry = True
        ctx.ledger_categories = _parse_ledger_categories(tokenize(text)[2])
    text = _read(root, METRIC_REGISTRY_HEADER)
    if text is not None:
        ctx.has_metric_registry = True
        ctx.metric_names = {t.text for t in tokenize(text)[2]
                            if t.kind == "str"}
    _CONTEXTS[root] = ctx
    return ctx


# ---------------------------------------------------------------------------
# Line-scoped rules (ported from the regex engine; they consume the
# tokenizer's blanked code_lines). Each takes (relpath, lines, code_lines)
# and yields (line_no, message).
# ---------------------------------------------------------------------------

RNG_TOKENS = re.compile(
    r"std::mt19937|std::minstd_rand|std::default_random_engine"
    r"|std::random_device|\bsrand\s*\(|(?<![\w:.>])rand\s*\(")


def rule_unseeded_rng(relpath, lines, code_lines):
    if _norm(relpath).startswith("src/util/random"):
        return
    for no, code in enumerate(code_lines, 1):
        m = RNG_TOKENS.search(code)
        if m:
            yield no, (f"'{m.group(0).strip()}' — all randomness must flow "
                       "through tcq::Rng (src/util/random.h) so runs are "
                       "reproducible from a single seed")


WALL_CLOCK_TOKENS = re.compile(
    r"std::chrono::system_clock|\bgettimeofday\s*\(|\blocaltime\s*\("
    r"|\bgmtime\s*\(|(?<![\w:.>])time\s*\(|(?<![\w:.>])clock\s*\(")


def rule_wall_clock(relpath, lines, code_lines):
    p = _norm(relpath)
    if not p.startswith("src/") or p.startswith("src/timectrl/"):
        return
    for no, code in enumerate(code_lines, 1):
        m = WALL_CLOCK_TOKENS.search(code)
        if m:
            yield no, (f"'{m.group(0).strip()}' — wall-clock reads outside "
                       "src/timectrl/ break the hard-deadline accounting; "
                       "use the ledger/VirtualClock or a monotonic clock "
                       "owned by timectrl")


STDOUT_TOKENS = re.compile(
    r"std::cout|(?<![\w:])\bprintf\s*\(|(?<![\w:])\bputs\s*\("
    r"|\bfprintf\s*\(\s*stdout")


def rule_stdout_in_lib(relpath, lines, code_lines):
    if not _norm(relpath).startswith("src/"):
        return
    for no, code in enumerate(code_lines, 1):
        m = STDOUT_TOKENS.search(code)
        if m:
            yield no, (f"'{m.group(0).strip()}' — library code must not "
                       "write to stdout; return strings/Status and let "
                       "examples/bench do the printing")


# std::thread::id is an identity read, not thread creation, and is the
# sanctioned way for per-thread data structures (e.g. the tracer's
# lock-free buffers) to key on the current thread.
THREAD_TOKENS = re.compile(
    r"std::thread\b(?!::id)|std::jthread\b|std::async\b|\.detach\s*\(")


def rule_thread_outside_parallel(relpath, lines, code_lines):
    p = _norm(relpath)
    if p.startswith("src/parallel/"):
        return
    for no, code in enumerate(code_lines, 1):
        m = THREAD_TOKENS.search(code)
        if m:
            yield no, (f"'{m.group(0).strip()}' — raw threads outside "
                       "src/parallel/ escape the ThreadPool's fixed-order "
                       "reduction and shutdown contracts; use "
                       "tcq::ThreadPool / RunTasks")


# Constructor-style uses only: `CacheKey(...)` / `CacheKey{...}`.
# Declarations that merely hold a returned key (`CacheKey k = ...;`) and
# the factory's own signature (`CacheKey CanonicalSignature(...)`) have an
# identifier between the type name and the parenthesis and do not match.
CACHE_KEY_TOKENS = re.compile(r"\bCacheKey\s*[({]")


def rule_cache_key_canonical(relpath, lines, code_lines):
    p = _norm(relpath)
    if not p.startswith("src/") or p.startswith("src/cache/"):
        return
    for no, code in enumerate(code_lines, 1):
        m = CACHE_KEY_TOKENS.search(code)
        if m:
            yield no, (f"'{m.group(0).strip()}' — warm-start cache keys are "
                       "built only by CanonicalSignature(expr) in "
                       "src/cache/signature.*; a hand-constructed key skips "
                       "canonicalization and splits the cache for "
                       "semantically equal queries")


TRACE_FORMAT_TOKENS = re.compile(
    r"\bExportChromeJson\b|\bAppendTraceEventJson\b")
# The schema key appears inside a string literal, which code_lines blanks
# out, so the raw line is checked. The leading (possibly escaped) quote
# keeps prose mentions of traceEvents from firing.
TRACE_FORMAT_LITERAL = re.compile(r'\\?"traceEvents')


def rule_trace_format_outside_obs(relpath, lines, code_lines):
    p = _norm(relpath)
    if not p.startswith("src/") or p.startswith("src/obs/"):
        return
    for no, (line, code) in enumerate(zip(lines, code_lines), 1):
        m = TRACE_FORMAT_TOKENS.search(code) or TRACE_FORMAT_LITERAL.search(
            line)
        if m:
            yield no, (f"'{m.group(0)}' — trace JSON is formatted only in "
                       "src/obs/ so the golden-schema test covers every "
                       "byte a query can emit; record through the Tracer "
                       "API and export with Tracer::ExportToFile")


# A declaration line returning Status or Result<...>. Anchored at the start
# of the declaration so fields (`Status parse_status_;`) and callable-type
# aliases (`std::function<Result<double>(double)>`) do not match.
NODISCARD_DECL_RE = re.compile(
    r"^\s*(?:(?:static|virtual|friend|inline|constexpr|explicit)\s+)*"
    r"(Status|Result<[^;={}]*>)\s+([A-Za-z_]\w*)\s*\(")


def rule_nodiscard_status(relpath, lines, code_lines):
    p = _norm(relpath)
    if not p.startswith("src/") or not p.endswith((".h", ".hpp")):
        return
    for no, code in enumerate(code_lines, 1):
        m = NODISCARD_DECL_RE.match(code)
        if not m:
            continue
        # Headers in this codebase only contain declarations at class /
        # namespace scope. Accept annotation on the same line or the
        # immediately preceding non-blank line.
        head = code[:m.start(1)]
        if "[[nodiscard]]" in head:
            continue
        prev = ""
        for back in range(no - 2, max(-1, no - 4), -1):
            stripped = lines[back].strip() if back >= 0 else ""
            if stripped:
                prev = stripped
                break
        if "[[nodiscard]]" in prev:
            continue
        yield no, (f"'{m.group(2)}' returns {m.group(1).split('<')[0]} but is "
                   "not [[nodiscard]]; a dropped Status is a swallowed error "
                   "in an exception-free library")


# Member-call spelling only: `builder.With(...)` / chained `.With (...)`.
# Typed setters (`.WithQuota(`) have letters between "With" and the
# parenthesis and do not match; the declaration in api/tcq.h has no
# preceding dot.
RAW_OPTIONS_EDIT_TOKENS = re.compile(r"\.\s*With\s*\(")


def rule_raw_options_edit(relpath, lines, code_lines):
    if _norm(relpath).startswith("tests/"):
        return
    for no, code in enumerate(code_lines, 1):
        m = RAW_OPTIONS_EDIT_TOKENS.search(code)
        if m:
            yield no, ("'.With(' — the deprecated raw-ExecutorOptions "
                       "escape hatch; use the typed With* setters so the "
                       "configuration stays greppable and in sync with "
                       "EXPLAIN and admission control (tests excepted)")


# Block-internals access only: `->tuples` (blocks travel through exec as
# `const Block*`, so member access on one is an arrow) and the deprecated
# `block(` accessor behind a member dot/arrow. TupleSet-style value
# members (`out.tuples`), StepMetrics fields (`->in_tuples`,
# `->out_tuples`) and BlockView calls (`ViewBlock(`) do not match.
RAW_TUPLE_SCAN_TOKENS = re.compile(r"->\s*tuples\b|(?:\.|->)\s*block\s*\(")


def rule_raw_tuple_scan(relpath, lines, code_lines):
    if not _norm(relpath).startswith("src/exec/"):
        return
    for no, code in enumerate(code_lines, 1):
        m = RAW_TUPLE_SCAN_TOKENS.search(code)
        if m:
            yield no, (f"'{m.group(0).strip()}' — tuple-at-a-time block "
                       "access; operators consume blocks through BlockView "
                       "(ViewBlock()/ReadBlock()) so the row and columnar "
                       "layouts stay interchangeable and bit-identical")


# The Status/Result-returning storage entry points (page_codec.h,
# relation.h). All carry [[nodiscard]], but a `(void)` cast compiles
# cleanly and a missed wrapper macro is easy to write; with per-page
# checksums these returns are the *only* channel a corrupt/injected-fault
# page reports through, so discarding one in storage code converts a
# detectable DataLoss into silent wrong data.
STORAGE_STATUS_CALLS = (
    "SaveRelation", "SaveCatalog", "LoadRelation", "LoadCatalog",
    "EncodeTuple", "DecodeTuple", "EncodePage", "DecodePage",
    "ReadBlock", "Append", "Register", "ValidateTuple",
)
# A call that *starts* a statement: optional `(void)` cast, optional
# receiver (`rel.` / `catalog->` / `tcq::`), then the name and its
# opening parenthesis. Uses as a subexpression (`return Save...`,
# `Status s = Save...`, `if (!Save...`) have other tokens before the
# name and never match.
STORAGE_CALL_RE = re.compile(
    r"^\s*(?:\(\s*void\s*\)\s*)?(?:[A-Za-z_]\w*\s*(?:\.|->)\s*|tcq::)?"
    r"(" + "|".join(STORAGE_STATUS_CALLS) + r")\s*\(")


def rule_status_discarded_in_storage(relpath, lines, code_lines):
    if not _norm(relpath).startswith("src/storage/"):
        return
    for no, code in enumerate(code_lines, 1):
        m = STORAGE_CALL_RE.match(code)
        if not m:
            continue
        # Walk the call's parentheses (the statement may span lines). The
        # first non-space character after the matching close decides:
        # `;` means the return value was discarded; an extra `)` (depth
        # going negative) means this line only continues a wrapper such
        # as TCQ_RETURN_NOT_OK( opened on a previous line; anything else
        # (`.ok()`, `,`) is a real use.
        depth = 0
        tail = code[m.end() - 1:]  # from the call's opening paren
        verdict = None
        row = no - 1
        while verdict is None and row < len(code_lines) and row < no + 9:
            for ch in tail:
                if ch == "(":
                    depth += 1
                elif ch == ")":
                    depth -= 1
                    if depth < 0:
                        verdict = "wrapped"
                        break
                elif depth == 0 and not ch.isspace():
                    verdict = "discarded" if ch == ";" else "used"
                    break
            row += 1
            tail = code_lines[row] if row < len(code_lines) else ""
        if verdict == "discarded":
            yield no, (f"'{m.group(1)}' returns Status/Result but the call "
                       "is a bare statement; in src/storage/ that return "
                       "is the only channel a corrupt page (checksum "
                       "DataLoss) or injected fault reports through — wrap "
                       "in TCQ_RETURN_NOT_OK / TCQ_ASSIGN_OR_RETURN or "
                       "branch on .ok()")


# ---------------------------------------------------------------------------
# Token-stream rules. Each takes (ctx, relpath, tokens) and yields
# (line_no, message).
# ---------------------------------------------------------------------------

_MUTEX_WRAPPERS = ("Mutex", "SharedMutex")
_RAW_MUTEXES = ("mutex", "shared_mutex")
_GUARD_ANNOTATIONS = ("TCQ_GUARDED_BY", "TCQ_PT_GUARDED_BY")


def _class_spans(tokens: list[Token]):
    """Yields (name, body_start, body_end) token-index spans of every
    class/struct body, innermost classes included (each nested body is
    yielded separately; a field match is attributed to the innermost
    enclosing span by taking the tightest span later)."""
    i = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind == "id" and t.text in ("class", "struct") \
                and not (i > 0 and tokens[i - 1].text == "enum"):
            # Skip over the name (possibly qualified: Server::Impl)
            # and any base-class list up to the opening brace; bail on a
            # forward declaration or a template parameter use. The name
            # scan stops at the base-class colon.
            j = i + 1
            name = None
            naming = True
            while j < n and tokens[j].text not in ("{", ";", "(", ")"):
                if tokens[j].text == ":":
                    naming = False
                elif naming and tokens[j].kind == "id" \
                        and tokens[j].text != "final":
                    name = tokens[j].text
                j += 1
            if j < n and tokens[j].text == "{":
                depth = 0
                k = j
                while k < n:
                    if tokens[k].text == "{":
                        depth += 1
                    elif tokens[k].text == "}":
                        depth -= 1
                        if depth == 0:
                            break
                    k += 1
                yield (name or "<anonymous>", j, k)
        i += 1


def _innermost_span(spans, idx):
    best = None
    for name, s, e in spans:
        if s < idx < e and (best is None or s > best[1]):
            best = (name, s, e)
    return best


def rule_unannotated_guarded_field(ctx, relpath, tokens):
    p = _norm(relpath)
    if not p.startswith("src/") or p.startswith("src/util/"):
        return
    spans = list(_class_spans(tokens))
    if not spans:
        return
    # Per innermost class: the wrapper-mutex fields and whether any
    # TCQ_GUARDED_BY appears.
    mutex_fields: dict[tuple, list] = {}
    annotated: set[tuple] = set()
    n = len(tokens)
    for i, t in enumerate(tokens):
        if t.kind != "id":
            continue
        span = _innermost_span(spans, i)
        if span is None:
            continue
        if t.text in _GUARD_ANNOTATIONS:
            annotated.add(span)
            continue
        if t.text in _MUTEX_WRAPPERS:
            # Field shape: [mutable] [tcq ::] Mutex name ; — a reference
            # or pointer declarator, or a following '(', is a parameter
            # or local construction, not a field.
            if i + 2 < n and tokens[i + 1].kind == "id" \
                    and tokens[i + 2].text == ";":
                mutex_fields.setdefault(span, []).append(
                    (t.line, t.text, tokens[i + 1].text))
        elif t.text in _RAW_MUTEXES and i >= 2 \
                and tokens[i - 1].text == "::" \
                and tokens[i - 2].text == "std":
            if i + 2 < n and tokens[i + 1].kind == "id" \
                    and tokens[i + 2].text == ";":
                yield t.line, (
                    f"raw std::{t.text} field '{tokens[i + 1].text}' in "
                    f"class '{span[0]}' — use tcq::Mutex/tcq::SharedMutex "
                    "(util/mutex.h) so clang -Wthread-safety can see the "
                    "acquire/release and TCQ_GUARDED_BY can name it")
    for span, fields in mutex_fields.items():
        if span in annotated:
            continue
        line, mtype, fname = fields[0]
        yield line, (
            f"class '{span[0]}' declares {mtype} '{fname}' but no field "
            "is TCQ_GUARDED_BY it; under GCC the capability annotations "
            "are the only record of the lock discipline — annotate the "
            "guarded fields (util/thread_annotations.h)")


def rule_ledger_category_charged(ctx, relpath, tokens):
    p = _norm(relpath)
    if not p.startswith("src/") or p.startswith("src/sim/"):
        return
    if not ctx.has_ledger_registry:
        return
    n = len(tokens)
    for i, t in enumerate(tokens):
        if t.kind != "id" or t.text not in ("Charge", "ChargeN"):
            continue
        if i == 0 or tokens[i - 1].text not in (".", "->"):
            continue  # declarations / free functions, not ledger calls
        if i + 1 >= n or tokens[i + 1].text != "(":
            continue
        # First argument must be the qualified enumerator
        # CostCategory::kSomething declared in src/sim/ledger.h.
        if i + 4 < n and tokens[i + 2].text == "CostCategory" \
                and tokens[i + 3].text == "::" \
                and tokens[i + 4].kind == "id":
            cat = tokens[i + 4].text
            if cat in ctx.ledger_categories:
                continue
            yield t.line, (
                f"'{t.text}(CostCategory::{cat}, ...)' charges an "
                "undeclared category; declared categories live in the "
                f"single registry enum in {LEDGER_REGISTRY_HEADER}")
        else:
            first = tokens[i + 2].text if i + 2 < n else "?"
            yield t.line, (
                f"'{t.text}({first}...)' does not name its CostCategory "
                "at the call site; every ledger charge must spell "
                "CostCategory::k... (registry: "
                f"{LEDGER_REGISTRY_HEADER}) so cost accounting stays "
                "auditable")


_METRIC_LOOKUPS = ("counter", "gauge", "histogram")


def rule_metric_name_registry(ctx, relpath, tokens):
    if not ctx.has_metric_registry:
        return
    if _norm(relpath) == METRIC_REGISTRY_HEADER:
        return
    n = len(tokens)
    for i, t in enumerate(tokens):
        if t.kind != "id" or t.text not in _METRIC_LOOKUPS:
            continue
        if i == 0 or tokens[i - 1].text not in (".", "->"):
            continue
        if i + 2 >= n or tokens[i + 1].text != "(":
            continue
        arg = tokens[i + 2]
        if arg.kind != "str":
            continue  # dynamically composed name — exempt
        if arg.text in ctx.metric_names:
            continue
        yield arg.line, (
            f'metric name "{arg.text}" is not declared in '
            f"{METRIC_REGISTRY_HEADER}; dashboards are built against the "
            "registry, so an unregistered instrument name drifts "
            "silently — add the constant there (or use it)")


TOKEN_RULES = {
    "unannotated-guarded-field": rule_unannotated_guarded_field,
    "ledger-category-charged": rule_ledger_category_charged,
    "metric-name-registry": rule_metric_name_registry,
}

LINE_RULES = {
    "unseeded-rng": rule_unseeded_rng,
    "wall-clock": rule_wall_clock,
    "stdout-in-lib": rule_stdout_in_lib,
    "nodiscard-status": rule_nodiscard_status,
    "thread-outside-parallel": rule_thread_outside_parallel,
    "cache-key-canonical": rule_cache_key_canonical,
    "trace-format-outside-obs": rule_trace_format_outside_obs,
    "raw-options-edit": rule_raw_options_edit,
    "raw-tuple-scan": rule_raw_tuple_scan,
    "status-discarded-in-storage": rule_status_discarded_in_storage,
}

# stale-allow is synthesized from the suppression pass itself (see
# lint_file); it has no standalone rule function and is not suppressible.
RULES = {**LINE_RULES, **TOKEN_RULES, "stale-allow": None}


def lint_file(root: str, relpath: str) -> list[Finding]:
    text = _read(root, relpath)
    if text is None:
        return [Finding(relpath, 0, "io-error",
                        f"cannot read {os.path.join(root, relpath)}")]
    ctx = context_for_root(root)

    lines, code_lines, tokens = tokenize(text)

    disabled = set()
    for line in lines[:20]:
        m = DISABLE_FILE_RE.search(line)
        if m:
            disabled.update(r.strip() for r in m.group(1).split(","))

    line_allows: dict[int, set] = {}
    for no, line in enumerate(lines, 1):
        m = ALLOW_RE.search(line)
        if m:
            line_allows[no] = {r.strip() for r in m.group(1).split(",")}

    raw: list[Finding] = []
    for name, rule in LINE_RULES.items():
        if name in disabled:
            continue
        for no, message in rule(relpath, lines, code_lines):
            raw.append(Finding(relpath, no, name, message))
    for name, rule in TOKEN_RULES.items():
        if name in disabled:
            continue
        for no, message in rule(ctx, relpath, tokens):
            raw.append(Finding(relpath, no, name, message))

    findings = []
    consumed: dict[int, set] = {}
    for f in raw:
        if f.rule in line_allows.get(f.line, ()):
            consumed.setdefault(f.line, set()).add(f.rule)
            continue
        findings.append(f)

    # Suppression hygiene: every allow() entry must have silenced a
    # finding on its own line, and must name a real rule. (disable-file
    # is whole-file policy and is not checked for staleness.)
    if "stale-allow" not in disabled:
        for no, allowed in sorted(line_allows.items()):
            for rule_name in sorted(allowed):
                if rule_name not in RULES:
                    findings.append(Finding(
                        relpath, no, "stale-allow",
                        f"allow({rule_name}) names an unknown rule; run "
                        "--list-rules for the valid names"))
                elif rule_name not in consumed.get(no, ()):
                    findings.append(Finding(
                        relpath, no, "stale-allow",
                        f"allow({rule_name}) suppresses nothing on this "
                        "line; the finding it silenced is gone — delete "
                        "the stale suppression"))
    findings.sort(key=lambda f: (f.line, f.rule))
    return findings


def collect_files(root: str, paths: list[str]) -> list[str]:
    rels = []
    if not paths:
        paths = [d for d in DEFAULT_SCAN_DIRS
                 if os.path.isdir(os.path.join(root, d))]
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(full):
            rels.append(os.path.relpath(full, root))
            continue
        for dirpath, dirnames, filenames in os.walk(full):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in ("build", ".git")
                                 and not d.startswith("build-"))
            for fn in sorted(filenames):
                if fn.endswith(CXX_EXTENSIONS):
                    rels.append(
                        os.path.relpath(os.path.join(dirpath, fn), root))
    return rels


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0],
                                 prog="tcq_lint.py")
    ap.add_argument("paths", nargs="*",
                    help="files or directories (default: src bench examples "
                         "tests under --root)")
    ap.add_argument("--root", default=None,
                    help="repository root (default: parent of tools/)")
    ap.add_argument("--list-rules", action="store_true",
                    help="print rule names and exit")
    ap.add_argument("--report-json", default=None, metavar="PATH",
                    help="write per-rule hit counts as JSON to PATH")
    args = ap.parse_args(argv)

    if args.list_rules:
        for name in RULES:
            print(name)
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    files = collect_files(root, args.paths)
    if not files:
        print("tcq_lint: no input files", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for rel in files:
        findings.extend(lint_file(root, rel))

    by_rule = {name: 0 for name in RULES}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1

    if args.report_json:
        report = {
            "files_scanned": len(files),
            "findings": len(findings),
            "rules": by_rule,
        }
        report_dir = os.path.dirname(args.report_json)
        if report_dir:
            os.makedirs(report_dir, exist_ok=True)
        with open(args.report_json, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")

    for f in findings:
        print(f)
    if findings:
        summary = ", ".join(f"{k}: {v}" for k, v in sorted(by_rule.items())
                            if v > 0)
        print(f"tcq_lint: {len(findings)} finding(s) in {len(files)} files "
              f"({summary})", file=sys.stderr)
        return 1
    print(f"tcq_lint: OK ({len(files)} files, {len(RULES)} rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
