// raw-options-edit is scoped away from tests/: a test may use the
// deprecated escape hatch deliberately, e.g. to prove the typed setters
// and a raw edit configure the very same ExecutorOptions.
#include "api/tcq.h"

namespace tcq {
void OkRawEditInTest(Session& session) {
  session.Query("r1 INTERSECT r2")
      .With([](ExecutorOptions* o) { o->quota_s = 2.0; });
}
}  // namespace tcq
