// Clean: stdout-in-lib applies to src/ only; bench harnesses print JSON.
#include <cstdio>

int main() {
  printf("{\"rows\": []}\n");
  return 0;
}
