// Positive fixture for unannotated-guarded-field: one class declares a
// tcq Mutex but puts TCQ_GUARDED_BY on nothing; another holds a raw
// std::mutex instead of the annotated wrapper.
#ifndef TCQ_LINT_FIXTURE_SRC_SERVE_BAD_UNANNOTATED_H_
#define TCQ_LINT_FIXTURE_SRC_SERVE_BAD_UNANNOTATED_H_

namespace tcq {

class UnannotatedCounter {
 public:
  void Increment();

 private:
  mutable Mutex mu_;
  long count_ = 0;
};

class RawMutexHolder {
 private:
  std::mutex raw_mu_;
  long value_ = 0;
};

}  // namespace tcq

#endif  // TCQ_LINT_FIXTURE_SRC_SERVE_BAD_UNANNOTATED_H_
