// Negative fixture for unannotated-guarded-field: the guarded field is
// annotated, so the capability rule stays quiet.
#ifndef TCQ_LINT_FIXTURE_SRC_SERVE_OK_ANNOTATED_H_
#define TCQ_LINT_FIXTURE_SRC_SERVE_OK_ANNOTATED_H_

namespace tcq {

class AnnotatedCounter {
 public:
  void Increment();

 private:
  mutable Mutex mu_;
  long count_ TCQ_GUARDED_BY(mu_) = 0;
};

}  // namespace tcq

#endif  // TCQ_LINT_FIXTURE_SRC_SERVE_OK_ANNOTATED_H_
