// Fixture: src/cache/ owns key construction, so building a CacheKey here
// is exactly what the cache-key-canonical rule permits. Callers that only
// hold a returned key (`CacheKey k = CanonicalSignature(...)`) are also
// clean — the rule matches constructor syntax, not the type name.
#include <string>

namespace tcq {

CacheKey CanonicalSignature(const Expr& expr) {
  return CacheKey(Canonical(expr));
}

}  // namespace tcq
