// Fixture: the sanctioned ways to consume storage Status returns. The
// TCQ_RETURN_NOT_OK continuation line mirrors SaveCatalog in
// src/storage/page_codec.cc and must not fire even though SaveRelation
// opens the line.
#include "storage/page_codec.h"

tcq::Status CheckpointAll(const tcq::Catalog& cat, const tcq::Relation& rel) {
  TCQ_RETURN_NOT_OK(
      SaveRelation(rel, "/tmp/r.tcq"));
  tcq::Status s = SaveCatalog(cat, "/tmp/dir");
  if (!SaveCatalog(cat, "/tmp/dir2").ok()) {
    return s;
  }
  TCQ_ASSIGN_OR_RETURN(
      tcq::Relation reloaded,
      LoadRelation("/tmp/r.tcq"));
  return SaveRelation(reloaded, "/tmp/r2.tcq");
}
