// Fixture: storage code dropping Status/Result returns on the floor.
// Bare statements and (void) casts both compile; the lint must catch
// them because a discarded return hides a checksum DataLoss.
#include "storage/page_codec.h"

void Checkpoint(const tcq::Relation& rel, const tcq::Catalog& cat) {
  SaveRelation(rel, "/tmp/r.tcq");
  (void)SaveCatalog(cat, "/tmp/dir");
  LoadRelation(
      "/tmp/r.tcq");
}
