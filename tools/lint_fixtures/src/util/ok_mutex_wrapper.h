// Negative fixture for unannotated-guarded-field: src/util/ is exempt —
// the annotated wrapper types themselves must hold the raw primitives.
#ifndef TCQ_LINT_FIXTURE_SRC_UTIL_OK_MUTEX_WRAPPER_H_
#define TCQ_LINT_FIXTURE_SRC_UTIL_OK_MUTEX_WRAPPER_H_

#include <mutex>

namespace tcq {

class WrapperForTest {
 public:
  void Lock() { raw_.lock(); }
  void Unlock() { raw_.unlock(); }

 private:
  std::mutex raw_;
};

}  // namespace tcq

#endif  // TCQ_LINT_FIXTURE_SRC_UTIL_OK_MUTEX_WRAPPER_H_
