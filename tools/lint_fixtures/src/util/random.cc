// Clean: std generators are allowed inside src/util/random.* (this is the
// one place the project-wide RNG wrapper may touch them).
#include <random>

namespace tcq {

unsigned SeedScramble(unsigned seed) {
  std::mt19937 gen(seed);
  return static_cast<unsigned>(gen());
}

}  // namespace tcq
