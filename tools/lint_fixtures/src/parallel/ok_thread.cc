// Clean: src/parallel/ owns raw threads.
#include <thread>

namespace tcq {

void SpawnOk() {
  std::thread worker([] {});
  worker.join();
}

}  // namespace tcq
