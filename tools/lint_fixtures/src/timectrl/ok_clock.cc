// Clean: src/timectrl/ owns wall-clock access.
#include <chrono>

namespace tcq {

double NowSeconds() {
  auto t = std::chrono::system_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

}  // namespace tcq
