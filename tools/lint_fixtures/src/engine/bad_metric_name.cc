// Positive fixture for metric-name-registry: neither instrument name is
// declared in the registry header (src/obs/metric_names.h).
namespace tcq {

void RecordBad(Metrics* metrics) {
  metrics->counter("engine.unregistered_total")->Increment();
  metrics->histogram("serve.not_in_registry_s")->Record(0.5);
}

}  // namespace tcq
