// Violates cache-key-canonical: hand-built warm-start cache keys outside
// src/cache/ bypass CanonicalSignature, so "a INTERSECT b" and
// "b INTERSECT a" would land in different cache entries.
#include <string>

namespace tcq {

void SeedCacheBadly(const std::string& text) {
  auto key = CacheKey(text);              // flagged
  auto brace_key = CacheKey{"scan(r1)"};  // flagged
  (void)key;
  (void)brace_key;
}

}  // namespace tcq
