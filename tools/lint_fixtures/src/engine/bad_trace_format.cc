// Fixture: library code outside src/obs/ must not assemble trace JSON by
// hand or reach for the obs-internal formatting entry points.
#include <string>

namespace tcq {

std::string HandRolledTrace(const std::string& body) {
  std::string json = "{\"traceEvents\": [";
  json += body;
  json += "]}";
  return json;
}

std::string ReExport(Tracer& tracer) { return tracer.ExportChromeJson(); }
void Leak(std::string* out) { AppendTraceEventJson(nullptr, out); }

}  // namespace tcq
