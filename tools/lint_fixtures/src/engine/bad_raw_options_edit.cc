// raw-options-edit: the deprecated QueryBuilder::With escape hatch in
// library code. Typed With* setters keep the configuration greppable and
// in sync with EXPLAIN and the admission fit probe; raw edits do not.
#include "api/tcq.h"

namespace tcq {
void BadRawEdits(Session& session) {
  session.Query("r1 INTERSECT r2")
      .With([](ExecutorOptions* o) { o->quota_s = 2.0; });
  auto builder = session.Query("r1");
  builder . With ([](ExecutorOptions* o) { o->seed = 3; });
  // Typed setters are the sanctioned spelling and must not fire:
  auto ok = session.Query("r1").WithQuota(2.0).WithSeed(3);
  (void)ok;
}
}  // namespace tcq
