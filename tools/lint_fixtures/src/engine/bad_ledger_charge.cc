// Positive fixture for ledger-category-charged: the first charge names a
// category the registry enum never declared, the second routes a
// variable instead of spelling CostCategory::k... at the call site.
namespace tcq {

void ChargeBad(CostLedger* ledger, CostCategory cat) {
  ledger->Charge(CostCategory::kBogusCategory, 1.0);
  ledger->ChargeN(cat, 4, 0.001);
}

}  // namespace tcq
