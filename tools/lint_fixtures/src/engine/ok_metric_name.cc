// Negative fixture for metric-name-registry: registered names pass, and
// a dynamically composed (non-literal) name is exempt by design.
namespace tcq {

void RecordOk(Metrics* metrics, const std::string& dynamic_name) {
  metrics->counter("serve.test_ok")->Increment();
  metrics->gauge("cache.test_ok")->Set(1.0);
  metrics->counter(dynamic_name)->Increment();
}

}  // namespace tcq
