// Violates wall-clock: non-monotonic time reads outside src/timectrl/.
#include <chrono>
#include <ctime>

namespace tcq {

double ReadWallClock() {
  auto t = std::chrono::system_clock::now();  // flagged
  std::time_t raw = time(nullptr);            // flagged
  return static_cast<double>(raw) +
         std::chrono::duration<double>(t.time_since_epoch()).count();
}

}  // namespace tcq
