// Negative fixture for ledger-category-charged: every charge names a
// declared CostCategory enumerator literally at the call site.
namespace tcq {

void ChargeOk(CostLedger* ledger) {
  ledger->Charge(CostCategory::kBlockRead, 0.001);
  ledger->ChargeN(CostCategory::kFaultDelay, 2, 0.5);
}

}  // namespace tcq
