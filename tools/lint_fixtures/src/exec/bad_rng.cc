// Violates unseeded-rng: std library generators outside src/util/random.*.
#include <random>

namespace tcq {

int DrawBad() {
  std::mt19937 gen(42);                       // flagged even when seeded
  std::random_device rd;                      // flagged
  return static_cast<int>(gen() + rd());
}

}  // namespace tcq
