// Fixture: tuple-at-a-time block access in src/exec/ must go through
// BlockView (raw-tuple-scan).
#include "storage/relation.h"

namespace tcq {
int64_t CountAll(const Relation& rel, const Block* b) {
  int64_t n = static_cast<int64_t>(b->tuples.size());
  n += static_cast<int64_t>(rel.block(0).tuples.size());
  return n;
}
}  // namespace tcq
