// Violates thread-outside-parallel: raw threads outside src/parallel/.
#include <thread>

namespace tcq {

void SpawnBad() {
  std::thread worker([] {});  // flagged
  worker.detach();            // flagged
}

}  // namespace tcq
