// Fixture: BlockView-based scanning is the sanctioned access style, and
// the StepMetrics-style in_tuples/out_tuples fields must not trip
// raw-tuple-scan.
#include "storage/relation.h"

namespace tcq {
struct StepCounts {
  long in_tuples = 0;
  long out_tuples = 0;
};
long CountAll(const Relation& rel, StepCounts* metrics) {
  long n = 0;
  for (int64_t i = 0; i < rel.NumBlocks(); ++i) {
    n += static_cast<long>(rel.ViewBlock(i).rows().size());
  }
  metrics->in_tuples += n;
  metrics->out_tuples += n;
  return n;
}
}  // namespace tcq
