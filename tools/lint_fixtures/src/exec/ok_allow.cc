// Negative fixture for stale-allow: this suppression consumes a real
// finding on its line, so it is not stale (see also suppressed_rng.cc).
namespace tcq {

void PrintForDebug() {
  std::cout << "debug";  // tcq-lint: allow(stdout-in-lib)
}

}  // namespace tcq
