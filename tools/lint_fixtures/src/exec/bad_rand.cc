// Violates unseeded-rng via the C library generator.
#include <cstdlib>

namespace tcq {

int DrawBadC() {
  srand(7);            // flagged
  return rand() % 10;  // flagged
}

}  // namespace tcq
