// Clean: a justified suppression silences one line for one rule.
#include <random>

namespace tcq {

int DrawSuppressed() {
  // Fixture exercising the line-level allow escape hatch.
  std::mt19937 gen(42);  // tcq-lint: allow(unseeded-rng)
  return static_cast<int>(gen());
}

}  // namespace tcq
