// Positive fixture for stale-allow: the first suppression silences
// nothing on its line, the second names a rule that does not exist.
namespace tcq {

int StaleAllows() {
  int x = 1;  // tcq-lint: allow(unseeded-rng)
  int y = 2;  // tcq-lint: allow(no-such-rule)
  return x + y;
}

}  // namespace tcq
