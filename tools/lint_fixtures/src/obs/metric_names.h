// Fixture metric-name registry (mirrors src/obs/metric_names.h in the
// real tree): the metric-name-registry rule resolves instrument-name
// string literals against the constants declared here. Also a negative
// fixture — the registry itself lints clean.
#ifndef TCQ_LINT_FIXTURE_SRC_OBS_METRIC_NAMES_H_
#define TCQ_LINT_FIXTURE_SRC_OBS_METRIC_NAMES_H_

namespace tcq::metric_names {

inline constexpr char kServeTestOk[] = "serve.test_ok";
inline constexpr char kCacheTestOk[] = "cache.test_ok";

}  // namespace tcq::metric_names

#endif  // TCQ_LINT_FIXTURE_SRC_OBS_METRIC_NAMES_H_
