// Fixture: src/obs/ owns the trace_event schema, so formatting here is
// exactly what the trace-format-outside-obs rule permits.
#include <string>

namespace tcq {

std::string ExportChromeJson() {
  std::string json = "{\"traceEvents\": []}";
  return json;
}

}  // namespace tcq
