// Clean: annotated declarations, fields, and callable aliases must not be
// flagged by nodiscard-status.
#ifndef TCQ_FIXTURE_OK_NODISCARD_H_
#define TCQ_FIXTURE_OK_NODISCARD_H_

#include <functional>

#include "util/result.h"
#include "util/status.h"

namespace tcq {

class OkApi {
 public:
  [[nodiscard]] Status Open(const char* path);
  [[nodiscard]] static Result<int> Parse(int token);
  // Annotation on the preceding line is accepted too.
  [[nodiscard]]
  Result<double> Estimate();

 private:
  Status last_status_;                          // field, not a declaration
  std::function<Result<double>(double)> qcost;  // callable alias, ditto
};

// Mentions of Status in comments or strings are ignored:
// "Status Broken();" never trips the rule.

}  // namespace tcq

#endif  // TCQ_FIXTURE_OK_NODISCARD_H_
