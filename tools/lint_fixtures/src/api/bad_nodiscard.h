// Violates nodiscard-status: Status/Result-returning declarations without
// [[nodiscard]].
#ifndef TCQ_FIXTURE_BAD_NODISCARD_H_
#define TCQ_FIXTURE_BAD_NODISCARD_H_

#include "util/result.h"
#include "util/status.h"

namespace tcq {

class BadApi {
 public:
  Status Open(const char* path);          // flagged
  static Result<int> Parse(int token);    // flagged
  virtual Result<double> Estimate() = 0;  // flagged
};

}  // namespace tcq

#endif  // TCQ_FIXTURE_BAD_NODISCARD_H_
