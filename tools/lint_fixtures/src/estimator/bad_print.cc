// Violates stdout-in-lib: library code writing to stdout.
#include <cstdio>
#include <iostream>

namespace tcq {

void ReportBad(double estimate) {
  std::cout << "estimate = " << estimate << "\n";  // flagged
  printf("estimate = %f\n", estimate);             // flagged
}

}  // namespace tcq
