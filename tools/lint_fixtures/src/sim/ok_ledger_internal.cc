// Negative fixture for ledger-category-charged: src/sim/ is exempt —
// the ledger's own internals may forward a variable category.
namespace tcq {

void CostLedgerForward(CostLedger* ledger, CostCategory category,
                       double seconds) {
  ledger->Charge(category, seconds);
}

}  // namespace tcq
