// Fixture cost-category registry (mirrors src/sim/ledger.h in the real
// tree): the ledger-category-charged rule resolves CostCategory::k...
// enumerators against the enum declared here. Also a negative fixture —
// the registry itself lints clean.
#ifndef TCQ_LINT_FIXTURE_SRC_SIM_LEDGER_H_
#define TCQ_LINT_FIXTURE_SRC_SIM_LEDGER_H_

namespace tcq {

enum class CostCategory {
  kBlockRead = 0,
  kFaultDelay,
  kNumCategories,  // sentinel, not chargeable
};

}  // namespace tcq

#endif  // TCQ_LINT_FIXTURE_SRC_SIM_LEDGER_H_
