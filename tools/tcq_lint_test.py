#!/usr/bin/env python3
"""Self-test for tools/tcq_lint.py against the fixture tree.

Each fixture file under tools/lint_fixtures/ mimics a path inside the
real repository (the rules are path-scoped) and must produce exactly the
findings listed in EXPECTED — no more, no fewer. Run directly or via
ctest (registered as tcq_lint_selftest).
"""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import tcq_lint  # noqa: E402

FIXTURE_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "lint_fixtures")

# relpath -> sorted list of (line, rule) that linting it must produce.
EXPECTED = {
    "src/exec/bad_rng.cc": [
        (7, "unseeded-rng"),
        (8, "unseeded-rng"),
    ],
    "src/exec/bad_rand.cc": [
        (7, "unseeded-rng"),
        (8, "unseeded-rng"),
    ],
    "src/engine/bad_clock.cc": [
        (8, "wall-clock"),
        (9, "wall-clock"),
    ],
    "src/estimator/bad_print.cc": [
        (8, "stdout-in-lib"),
        (9, "stdout-in-lib"),
    ],
    "src/api/bad_nodiscard.h": [
        (13, "nodiscard-status"),
        (14, "nodiscard-status"),
        (15, "nodiscard-status"),
    ],
    "src/exec/bad_thread.cc": [
        (7, "thread-outside-parallel"),
        (8, "thread-outside-parallel"),
    ],
    "src/engine/bad_cache_key.cc": [
        (9, "cache-key-canonical"),
        (10, "cache-key-canonical"),
    ],
    "src/engine/bad_trace_format.cc": [
        (8, "trace-format-outside-obs"),
        (14, "trace-format-outside-obs"),
        (15, "trace-format-outside-obs"),
    ],
    "src/engine/bad_raw_options_edit.cc": [
        (9, "raw-options-edit"),
        (11, "raw-options-edit"),
    ],
    "src/exec/bad_raw_tuple_scan.cc": [
        (7, "raw-tuple-scan"),
        (8, "raw-tuple-scan"),
    ],
    "src/storage/bad_discard.cc": [
        (7, "status-discarded-in-storage"),
        (8, "status-discarded-in-storage"),
        (9, "status-discarded-in-storage"),
    ],
    "src/serve/bad_unannotated.h": [
        (14, "unannotated-guarded-field"),
        (20, "unannotated-guarded-field"),
    ],
    "src/engine/bad_ledger_charge.cc": [
        (7, "ledger-category-charged"),
        (8, "ledger-category-charged"),
    ],
    "src/engine/bad_metric_name.cc": [
        (6, "metric-name-registry"),
        (7, "metric-name-registry"),
    ],
    "src/exec/stale_allow.cc": [
        (6, "stale-allow"),
        (7, "stale-allow"),
    ],
    # Scope and suppression cases: must come back clean.
    "tests/ok_raw_options_edit.cc": [],
    "src/util/random.cc": [],
    "src/timectrl/ok_clock.cc": [],
    "src/parallel/ok_thread.cc": [],
    "bench/ok_print.cc": [],
    "src/exec/suppressed_rng.cc": [],
    "src/api/ok_nodiscard.h": [],
    "src/obs/ok_trace_format.cc": [],
    "src/cache/signature.cc": [],
    "src/storage/ok_discard.cc": [],
    "src/serve/ok_annotated.h": [],
    "src/util/ok_mutex_wrapper.h": [],
    "src/engine/ok_ledger_charge.cc": [],
    "src/sim/ok_ledger_internal.cc": [],
    "src/engine/ok_metric_name.cc": [],
    "src/exec/ok_allow.cc": [],
    "src/exec/ok_block_view.cc": [],
    # The fixture registry headers the cross-file rules resolve against;
    # both must themselves lint clean.
    "src/sim/ledger.h": [],
    "src/obs/metric_names.h": [],
}


class TcqLintTest(unittest.TestCase):
    maxDiff = None

    def test_every_fixture_has_an_expectation(self):
        on_disk = sorted(
            f for f in tcq_lint.collect_files(FIXTURE_ROOT, []))
        self.assertEqual(on_disk, sorted(EXPECTED))

    def test_fixture_findings(self):
        for relpath, want in EXPECTED.items():
            with self.subTest(fixture=relpath):
                findings = tcq_lint.lint_file(FIXTURE_ROOT, relpath)
                got = sorted((f.line, f.rule) for f in findings)
                self.assertEqual(got, sorted(want))

    def test_cli_exit_codes(self):
        # Violating tree -> 1; clean subtree -> 0.
        self.assertEqual(
            tcq_lint.main(["--root", FIXTURE_ROOT, "src/exec/bad_rng.cc"]), 1)
        self.assertEqual(
            tcq_lint.main(["--root", FIXTURE_ROOT, "src/parallel"]), 0)

    def test_disable_file_suppression(self):
        lines = [
            "// tcq-lint: disable-file(unseeded-rng)",
            "#include <random>",
            "static std::mt19937 gen(1);",
        ]
        path = os.path.join(FIXTURE_ROOT, "src", "exec", "tmp_disable.cc")
        with open(path, "w") as f:
            f.write("\n".join(lines) + "\n")
        try:
            findings = tcq_lint.lint_file(FIXTURE_ROOT,
                                          "src/exec/tmp_disable.cc")
            self.assertEqual(findings, [])
        finally:
            os.remove(path)

    def test_real_tree_is_clean(self):
        repo_root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))
        findings = []
        for rel in tcq_lint.collect_files(repo_root, []):
            findings.extend(tcq_lint.lint_file(repo_root, rel))
        self.assertEqual([str(f) for f in findings], [])


if __name__ == "__main__":
    unittest.main()
